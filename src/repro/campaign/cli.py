"""``python -m repro.campaign`` — run / status / export.

Usage::

    # run a preset campaign into a persistent store (resumable:
    # re-running skips every completed point via its content hash)
    python -m repro.campaign run --spec fig17 --store runs/fig17 \\
        --seed 0 --workers 4

    # reduced grid, explicit axes
    python -m repro.campaign run --spec noise-grid --store runs/grid \\
        --counts 16,64 --rounds 2

    # a spec saved as JSON (CampaignSpec.to_dict round-trip)
    python -m repro.campaign run --spec runs/grid/spec.json --store ...

    # fault tolerance: bounded retries, per-point timeouts, and (for
    # CI) a deterministic fault-injection plan
    python -m repro.campaign run --spec fig17 --store runs/fig17 \\
        --timeout-s 120 --max-attempts 5 --fault-plan plan.json

    # storage drivers: posix (default, fsync-durable), memory
    # (ephemeral smoke runs), faulty (posix + injected storage faults
    # from a seeded plan; also honours $REPRO_STORAGE_FAULT_PLAN).
    # URL specs select the same backends explicitly — posix:///path,
    # memory://, http://host:port/bucket (remote object store)
    python -m repro.campaign run --spec fig17 --store runs/fig17 \\
        --storage-driver faulty --storage-fault-plan storage-plan.json
    python -m repro.campaign run --spec fig17 \\
        --storage-driver http://127.0.0.1:8123/campaign

    # serve a store over HTTP for remote runners (hermetic object
    # store; --fault-plan network rules inject seeded chaos for tests)
    python -m repro.campaign serve --root runs/fig17 --port 8123

    # serve the campaign *API* (HSDS-style service node): JSON specs
    # in, per-point metrics streamed out, cached points answered with
    # zero recompute, identical in-flight requests deduplicated
    python -m repro.campaign serve-api --store runs/fig17 --port 8124
    python -m repro.campaign serve-api \\
        --storage-driver http://hostA:8123/campaign --port 8124

    # submit a campaign to a running service node (retries + circuit
    # breaker; exit 1 when the service reports failed points)
    python -m repro.campaign submit --service http://127.0.0.1:8124 \\
        --spec fig17 --seed 0 --counts 1,16

    # what the store holds / the merged results table (status includes
    # leased/failed/quarantined counts and per-driver I/O stats;
    # --json emits one compact machine-readable line); both work
    # against a remote store via --storage-driver http://...
    python -m repro.campaign status --store runs/fig17
    python -m repro.campaign status --store runs/fig17 --json
    python -m repro.campaign export --store runs/fig17 --format csv

Concurrent runners: multiple ``run`` invocations may target the same
store simultaneously — points are partitioned through the lease files
under ``<store>/leases/`` and a killed runner's points are reclaimed
when its leases expire. See docs/ARCHITECTURE.md §7.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
import time
from pathlib import Path

from repro.campaign.faults import FaultPlan, StorageFaultPlan
from repro.campaign.presets import PRESETS, build_preset
from repro.campaign.runner import CampaignRunner, RetryPolicy
from repro.campaign.spec import CampaignSpec
from repro.campaign.storage import (
    DRIVER_NAMES,
    StorageRetryPolicy,
    build_driver,
    parse_driver_spec,
)
from repro.campaign.store import CampaignStore
from repro.errors import (
    CampaignExecutionError,
    ReproError,
    StorageError,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=(
            "Sharded, resumable, content-hash-cached experiment "
            "campaigns over the NetScatter network simulator"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a campaign (skipping already-stored points)"
    )
    run.add_argument(
        "--spec",
        required=True,
        help=(
            f"preset name ({', '.join(sorted(PRESETS))}) or a path to "
            "a CampaignSpec JSON file"
        ),
    )
    run.add_argument(
        "--store",
        default=None,
        help=(
            "store directory (created if missing; reruns resume "
            "here); optional when --storage-driver is a rootless URL "
            "spec (memory://, http://host:port/bucket)"
        ),
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="preset base seed (default 0; presets only)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool request (serial on 1-CPU hosts)",
    )
    run.add_argument(
        "--counts",
        default=None,
        help="comma-separated device counts overriding the preset grid",
    )
    run.add_argument(
        "--rounds", type=int, default=None, help="rounds per point"
    )
    run.add_argument(
        "--engine", default=None, help="engine override for presets"
    )
    run.add_argument(
        "--save-spec",
        action="store_true",
        help="also write the expanded spec to <store>/spec.json",
    )
    run.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-point attempt timeout (hung workers are retried)",
    )
    run.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="retry budget per point (default 3, seeded-jitter backoff)",
    )
    run.add_argument(
        "--lease-ttl-s",
        type=float,
        default=None,
        help="lease time-to-live for concurrent-runner claims",
    )
    run.add_argument(
        "--no-leases",
        action="store_true",
        help="skip the point-lease protocol (single-runner stores)",
    )
    run.add_argument(
        "--allow-partial",
        action="store_true",
        help="report permanently-failed points instead of erroring",
    )
    run.add_argument(
        "--fault-plan",
        default=None,
        help=(
            "fault-injection plan: inline JSON or a path "
            "(test/CI harness; also honours $REPRO_FAULT_PLAN)"
        ),
    )
    run.add_argument(
        "--storage-driver",
        default="posix",
        help=(
            f"storage backend: a name ({', '.join(DRIVER_NAMES)}) or "
            "a URL spec — posix:///path, memory://, "
            "http://host:port/bucket (remote object store)"
        ),
    )
    run.add_argument(
        "--storage-fault-plan",
        default=None,
        help=(
            "storage fault-injection plan: inline JSON or a path; "
            "implies a fault-injecting driver (test/CI harness; also "
            "honours $REPRO_STORAGE_FAULT_PLAN)"
        ),
    )

    status = sub.add_parser("status", help="summarise a store")
    status.add_argument("--store", default=None)
    status.add_argument(
        "--storage-driver",
        default=None,
        help=(
            "driver spec for non-posix stores "
            "(e.g. http://host:port/bucket)"
        ),
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="one compact JSON line (machine-readable fleet monitoring)",
    )

    export = sub.add_parser(
        "export", help="merged per-point results table from a store"
    )
    export.add_argument("--store", default=None)
    export.add_argument(
        "--storage-driver",
        default=None,
        help=(
            "driver spec for non-posix stores "
            "(e.g. http://host:port/bucket)"
        ),
    )
    export.add_argument(
        "--format", choices=("json", "csv"), default="json"
    )
    export.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write here instead of stdout",
    )

    serve = sub.add_parser(
        "serve",
        help="serve a store over HTTP for remote runners",
    )
    serve.add_argument(
        "--root",
        default=None,
        help="posix store directory to serve (default: in-memory)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8123,
        help="listen port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--bucket",
        default="campaign",
        help="bucket path segment clients must address",
    )
    serve.add_argument(
        "--storage-fault-plan",
        default=None,
        help=(
            "seeded fault plan whose *network* rules are injected "
            "server-side (chaos testing; inline JSON or a path)"
        ),
    )

    serve_api = sub.add_parser(
        "serve-api",
        help=(
            "serve the campaign API: JSON specs in, per-point metrics "
            "streamed out, cached points answered with zero recompute"
        ),
    )
    serve_api.add_argument(
        "--store",
        default=None,
        help="posix store directory backing the cache (default: memory)",
    )
    serve_api.add_argument(
        "--storage-driver",
        default=None,
        help=(
            "driver spec for the backing store — posix:///path, "
            "memory://, http://host:port/bucket (a remote object-store "
            "data node)"
        ),
    )
    serve_api.add_argument("--host", default="127.0.0.1")
    serve_api.add_argument(
        "--port",
        type=int,
        default=8124,
        help="listen port (0 picks an ephemeral port)",
    )
    serve_api.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool request per campaign execution",
    )
    serve_api.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-point attempt timeout for service-side runs",
    )
    serve_api.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="retry budget per point for service-side runs",
    )
    serve_api.add_argument(
        "--no-leases",
        action="store_true",
        help="skip the point-lease protocol (single-node stores)",
    )
    serve_api.add_argument(
        "--fault-plan",
        default=None,
        help=(
            "execute-stage fault plan applied to service-side runs "
            "(test/CI harness; inline JSON or a path)"
        ),
    )
    serve_api.add_argument(
        "--service-fault-plan",
        default=None,
        help=(
            "seeded network-chaos plan applied to API *requests* — "
            "refuse/503/disconnect/delay on submit/status/healthz "
            "(inline JSON or a path)"
        ),
    )

    submit = sub.add_parser(
        "submit",
        help="submit a campaign to a running serve-api node",
    )
    submit.add_argument(
        "--service",
        required=True,
        help="service base URL, e.g. http://127.0.0.1:8124",
    )
    submit.add_argument(
        "--spec",
        required=True,
        help=(
            f"preset name ({', '.join(sorted(PRESETS))}) or a path to "
            "a CampaignSpec JSON file"
        ),
    )
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument(
        "--counts",
        default=None,
        help="comma-separated device counts overriding the preset grid",
    )
    submit.add_argument("--rounds", type=int, default=None)
    submit.add_argument("--engine", default=None)
    submit.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="client-side submit retry budget (transient failures)",
    )
    submit.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help=(
            "per-read socket timeout (must exceed the slowest single "
            "point; default 60)"
        ),
    )
    submit.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the raw NDJSON event stream instead of the summary "
            "(byte-comparable across clients of one execution)"
        ),
    )
    return parser


def _load_spec(args) -> CampaignSpec:
    if args.spec in PRESETS:
        kwargs = {"rng": args.seed if args.seed is not None else 0}
        if args.counts is not None:
            kwargs["device_counts"] = tuple(
                int(c) for c in args.counts.split(",") if c.strip()
            )
        if args.rounds is not None:
            kwargs["n_rounds"] = args.rounds
        if args.engine is not None:
            kwargs["engine"] = args.engine
        return build_preset(args.spec, **kwargs)
    # A JSON spec is already fully expanded (explicit seeds, counts,
    # engines): the preset-only knobs cannot be applied to it, so
    # refuse loudly instead of silently running the unmodified grid.
    ignored = [
        flag
        for flag, value in (
            ("--seed", args.seed),
            ("--counts", args.counts),
            ("--rounds", args.rounds),
            ("--engine", args.engine),
        )
        if value is not None
    ]
    if ignored:
        raise ReproError(
            f"{', '.join(ignored)} only apply to preset specs; "
            f"{args.spec!r} is a JSON spec file — edit the file (or "
            "rebuild it from a preset) instead"
        )
    path = Path(args.spec)
    if not path.exists():
        raise ReproError(
            f"--spec {args.spec!r} is neither a preset "
            f"({', '.join(sorted(PRESETS))}) nor an existing JSON file"
        )
    return CampaignSpec.from_dict(json.loads(path.read_text()))


def _parse_storage_plan(raw) -> StorageFaultPlan | None:
    if raw is None:
        return None
    raw = raw.strip()
    try:
        return (
            StorageFaultPlan.from_json(raw)
            if raw.startswith("{")
            else StorageFaultPlan.from_file(raw)
        )
    except (ValueError, OSError) as error:
        # Malformed JSON / unreadable file: one actionable line, not a
        # json.JSONDecodeError traceback (plan-schema violations are
        # already ConfigurationError and pass through).
        raise ReproError(
            f"malformed storage fault plan {raw[:80]!r}: {error}"
        ) from error


def _parse_exec_plan(raw) -> FaultPlan | None:
    if raw is None:
        return None
    raw = raw.strip()
    try:
        return (
            FaultPlan.from_json(raw)
            if raw.startswith("{")
            else FaultPlan.from_file(raw)
        )
    except (ValueError, OSError) as error:
        raise ReproError(
            f"malformed fault plan {raw[:80]!r}: {error}"
        ) from error


def _check_store_arg(spec: str, store) -> None:
    """A posix-rooted driver spec needs ``--store``; URL backends with
    their own root (or none) do not."""
    parsed = parse_driver_spec(spec)
    needs_root = (
        parsed["scheme"] in ("posix", "faulty") and "root" not in parsed
    )
    if needs_root and store is None:
        raise ReproError(
            f"--store is required with --storage-driver {spec!r} "
            "(posix-backed stores need a directory)"
        )


def _cmd_run(args) -> int:
    spec = _load_spec(args)
    fault_plan = _parse_exec_plan(args.fault_plan)
    storage_plan = _parse_storage_plan(args.storage_fault_plan)
    _check_store_arg(args.storage_driver, args.store)
    driver = build_driver(
        args.storage_driver, args.store, storage_fault_plan=storage_plan
    )
    store = CampaignStore(fault_plan=fault_plan, driver=driver)
    store_label = store.root if store.root is not None else driver.name
    if args.save_spec:
        store.driver.put_atomic(
            "spec.json",
            (
                json.dumps(spec.to_dict(), indent=2, sort_keys=True)
                + "\n"
            ).encode("utf-8"),
        )
    runner_kwargs = {}
    if args.max_attempts is not None:
        runner_kwargs["retry"] = RetryPolicy(max_attempts=args.max_attempts)
    if args.lease_ttl_s is not None:
        runner_kwargs["lease_ttl_s"] = args.lease_ttl_s
    runner = CampaignRunner(
        store=store,
        workers=args.workers,
        point_timeout_s=args.timeout_s,
        use_leases=not args.no_leases,
        fault_plan=fault_plan,
        allow_partial=args.allow_partial,
        **runner_kwargs,
    )
    started = time.perf_counter()
    try:
        run = runner.run(spec)
    except (CampaignExecutionError, StorageError) as error:
        print(f"campaign {spec.name!r} FAILED: {error}", file=sys.stderr)
        print(
            "  (failure records are under "
            f"{store_label}/failures; re-run to retry, or pass "
            "--allow-partial to collect what succeeded)",
            file=sys.stderr,
        )
        return 1
    elapsed = time.perf_counter() - started
    failed_note = f", {run.n_failed} failed" if run.failures else ""
    degraded_note = (
        ", storage DEGRADED to read-only" if run.storage_degraded else ""
    )
    print(
        f"campaign {spec.name!r}: {len(run.results)} points "
        f"({run.n_cached} cached, {run.n_computed} computed"
        f"{failed_note}{degraded_note}) "
        f"in {elapsed:.2f}s -> {store_label}"
    )
    for result in run.results:
        point = result.point
        origin = "cache" if result.cached else "ran  "
        retry_note = (
            f" attempts={result.attempts}" if result.attempts > 1 else ""
        )
        print(
            f"  [{origin}] D={point.n_devices:>4} "
            f"engine={point.engine} noise={point.noise_mode} "
            f"fading={int(point.fading)} "
            f"backend={result.provenance.get('backend', '?')} "
            f"phy={result.metrics.phy_rate_bps / 1e3:.1f}kbps"
            f"{retry_note}"
        )
    for failure in run.failures:
        last = failure.attempts[-1] if failure.attempts else {}
        print(
            f"  [FAIL ] D={failure.point.n_devices:>4} "
            f"{failure.content_hash[:12]}… after "
            f"{len(failure.attempts)} attempts "
            f"({last.get('error', '?')}: {last.get('message', '?')})"
        )
    return 0 if not run.failures else 1


def _open_store(args) -> CampaignStore:
    """A read-side store from ``--store`` and/or ``--storage-driver``."""
    spec = getattr(args, "storage_driver", None)
    if spec is None:
        if args.store is None:
            raise ReproError(
                "need --store (posix directory) or --storage-driver "
                "(URL spec such as http://host:port/bucket)"
            )
        return CampaignStore(args.store)
    _check_store_arg(spec, args.store)
    driver = build_driver(spec, args.store)
    return CampaignStore(driver=driver)


def _cmd_status(args) -> int:
    status = _open_store(args).status()
    if args.json:
        # One compact line: fleet monitors tail many stores at once.
        print(json.dumps(status, separators=(",", ":"), sort_keys=True))
    else:
        print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _format_rows(rows, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(rows, indent=2, sort_keys=True) + "\n"
    columns: list = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def _cmd_export(args) -> int:
    rows = _open_store(args).export_rows()
    text = _format_rows(rows, args.format)
    if args.output is not None:
        args.output.write_text(text)
        print(f"exported {len(rows)} points to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_serve(args) -> int:
    # Imported here so the plain run/status paths never pay for the
    # HTTP stack.
    from repro.campaign.objectstore import ObjectStoreService
    from repro.campaign.storage import PosixDriver

    driver = (
        PosixDriver(args.root) if args.root is not None else None
    )
    service = ObjectStoreService(
        driver=driver,
        host=args.host,
        port=args.port,
        bucket=args.bucket,
        fault_plan=_parse_storage_plan(args.storage_fault_plan),
    )
    service.start()
    backing = args.root if args.root is not None else "memory://"
    print(
        f"serving {backing} at {service.url} "
        f"(--storage-driver {service.url})",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def _cmd_serve_api(args) -> int:
    # Imported here so the plain run/status paths never pay for the
    # HTTP stack.
    from repro.campaign.service import CampaignService

    if args.storage_driver is not None:
        _check_store_arg(args.storage_driver, args.store)
        driver = build_driver(args.storage_driver, args.store)
        store = CampaignStore(driver=driver)
        backing = driver.name
    elif args.store is not None:
        store = CampaignStore(args.store)
        backing = args.store
    else:
        store = None
        backing = "memory://"
    kwargs = {}
    if args.max_attempts is not None:
        kwargs["retry"] = RetryPolicy(max_attempts=args.max_attempts)
    service = CampaignService(
        store=store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        point_timeout_s=args.timeout_s,
        use_leases=not args.no_leases,
        fault_plan=_parse_exec_plan(args.fault_plan),
        service_fault_plan=_parse_storage_plan(args.service_fault_plan),
        **kwargs,
    )
    service.start()
    print(
        f"serving campaign API over {backing} at {service.url} "
        f"(submit with: python -m repro.campaign submit "
        f"--service {service.url} --spec ...)",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def _cmd_submit(args) -> int:
    from repro.campaign.client import CampaignServiceClient

    spec = _load_spec(args)
    kwargs = {}
    if args.max_attempts is not None:
        kwargs["retry"] = StorageRetryPolicy(
            max_attempts=args.max_attempts
        )
    if args.timeout_s is not None:
        kwargs["timeout_s"] = args.timeout_s
    client = CampaignServiceClient(args.service, **kwargs)
    started = time.perf_counter()
    try:
        run = client.submit(spec, raise_on_failed=False)
    except StorageError as error:
        print(
            f"campaign {spec.name!r} submit FAILED: {error}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        sys.stdout.buffer.write(b"".join(run.raw_lines))
        sys.stdout.buffer.flush()
        return 0 if run.summary.get("status") == "complete" else 1
    elapsed = time.perf_counter() - started
    if run.summary.get("status") == "failed":
        print(
            f"campaign {spec.name!r} FAILED server-side: "
            f"{run.summary.get('error', '?')}",
            file=sys.stderr,
        )
        return 1
    failed_note = f", {run.n_failed} failed" if run.n_failed else ""
    retry_note = (
        f" after {run.attempts} attempts" if run.attempts > 1 else ""
    )
    print(
        f"campaign {spec.name!r} [{run.campaign_id[:12]}]: "
        f"{len(run.point_events)} points "
        f"({run.n_cached} cached, {run.n_computed} computed"
        f"{failed_note}) in {elapsed:.2f}s via {client.url}"
        f"{retry_note}"
    )
    for event in run.point_events:
        metrics = event["metrics"]
        print(
            f"  [{event['index']:>3}] D={metrics['n_devices']:>4} "
            f"backend={event['provenance'].get('backend', '?')} "
            f"phy={metrics['phy_rate_bps'] / 1e3:.1f}kbps"
        )
    for event in run.events:
        if event.get("event") == "failed":
            print(
                f"  [FAIL] {event.get('content_hash', '?')[:12]}… "
                f"({event.get('error', '?')}: "
                f"{event.get('message', '?')})"
            )
    return 0 if run.summary.get("status") == "complete" else 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "serve-api":
        return _cmd_serve_api(args)
    if args.command == "submit":
        return _cmd_submit(args)
    return _cmd_export(args)


def entrypoint(argv=None) -> int:
    """:func:`main` with CLI-grade error reporting: any
    :class:`~repro.errors.ReproError` (bad driver spec, malformed
    fault plan, unusable spec file) becomes one actionable stderr line
    and exit code 2, never a traceback. Library callers use
    :func:`main`, which lets the typed errors propagate."""
    try:
        return main(argv)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(entrypoint())
