"""``python -m repro.campaign`` — run / status / export.

Usage::

    # run a preset campaign into a persistent store (resumable:
    # re-running skips every completed point via its content hash)
    python -m repro.campaign run --spec fig17 --store runs/fig17 \\
        --seed 0 --workers 4

    # reduced grid, explicit axes
    python -m repro.campaign run --spec noise-grid --store runs/grid \\
        --counts 16,64 --rounds 2

    # a spec saved as JSON (CampaignSpec.to_dict round-trip)
    python -m repro.campaign run --spec runs/grid/spec.json --store ...

    # what the store holds / the merged results table
    python -m repro.campaign status --store runs/fig17
    python -m repro.campaign export --store runs/fig17 --format csv
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
import time
from pathlib import Path

from repro.campaign.presets import PRESETS, build_preset
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=(
            "Sharded, resumable, content-hash-cached experiment "
            "campaigns over the NetScatter network simulator"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a campaign (skipping already-stored points)"
    )
    run.add_argument(
        "--spec",
        required=True,
        help=(
            f"preset name ({', '.join(sorted(PRESETS))}) or a path to "
            "a CampaignSpec JSON file"
        ),
    )
    run.add_argument(
        "--store",
        required=True,
        help="store directory (created if missing; reruns resume here)",
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="preset base seed (default 0; presets only)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool request (serial on 1-CPU hosts)",
    )
    run.add_argument(
        "--counts",
        default=None,
        help="comma-separated device counts overriding the preset grid",
    )
    run.add_argument(
        "--rounds", type=int, default=None, help="rounds per point"
    )
    run.add_argument(
        "--engine", default=None, help="engine override for presets"
    )
    run.add_argument(
        "--save-spec",
        action="store_true",
        help="also write the expanded spec to <store>/spec.json",
    )

    status = sub.add_parser("status", help="summarise a store")
    status.add_argument("--store", required=True)

    export = sub.add_parser(
        "export", help="merged per-point results table from a store"
    )
    export.add_argument("--store", required=True)
    export.add_argument(
        "--format", choices=("json", "csv"), default="json"
    )
    export.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write here instead of stdout",
    )
    return parser


def _load_spec(args) -> CampaignSpec:
    if args.spec in PRESETS:
        kwargs = {"rng": args.seed if args.seed is not None else 0}
        if args.counts is not None:
            kwargs["device_counts"] = tuple(
                int(c) for c in args.counts.split(",") if c.strip()
            )
        if args.rounds is not None:
            kwargs["n_rounds"] = args.rounds
        if args.engine is not None:
            kwargs["engine"] = args.engine
        return build_preset(args.spec, **kwargs)
    # A JSON spec is already fully expanded (explicit seeds, counts,
    # engines): the preset-only knobs cannot be applied to it, so
    # refuse loudly instead of silently running the unmodified grid.
    ignored = [
        flag
        for flag, value in (
            ("--seed", args.seed),
            ("--counts", args.counts),
            ("--rounds", args.rounds),
            ("--engine", args.engine),
        )
        if value is not None
    ]
    if ignored:
        raise ReproError(
            f"{', '.join(ignored)} only apply to preset specs; "
            f"{args.spec!r} is a JSON spec file — edit the file (or "
            "rebuild it from a preset) instead"
        )
    path = Path(args.spec)
    if not path.exists():
        raise ReproError(
            f"--spec {args.spec!r} is neither a preset "
            f"({', '.join(sorted(PRESETS))}) nor an existing JSON file"
        )
    return CampaignSpec.from_dict(json.loads(path.read_text()))


def _cmd_run(args) -> int:
    spec = _load_spec(args)
    store = CampaignStore(args.store)
    if args.save_spec:
        (store.root / "spec.json").write_text(
            json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    runner = CampaignRunner(store=store, workers=args.workers)
    started = time.perf_counter()
    run = runner.run(spec)
    elapsed = time.perf_counter() - started
    print(
        f"campaign {spec.name!r}: {len(run.results)} points "
        f"({run.n_cached} cached, {run.n_computed} computed) "
        f"in {elapsed:.2f}s -> {store.root}"
    )
    for result in run.results:
        point = result.point
        origin = "cache" if result.cached else "ran  "
        print(
            f"  [{origin}] D={point.n_devices:>4} "
            f"engine={point.engine} noise={point.noise_mode} "
            f"fading={int(point.fading)} "
            f"backend={result.provenance.get('backend', '?')} "
            f"phy={result.metrics.phy_rate_bps / 1e3:.1f}kbps"
        )
    return 0


def _cmd_status(args) -> int:
    status = CampaignStore(args.store).status()
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _format_rows(rows, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(rows, indent=2, sort_keys=True) + "\n"
    columns: list = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def _cmd_export(args) -> int:
    rows = CampaignStore(args.store).export_rows()
    text = _format_rows(rows, args.format)
    if args.output is not None:
        args.output.write_text(text)
        print(f"exported {len(rows)} points to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "status":
        return _cmd_status(args)
    return _cmd_export(args)


if __name__ == "__main__":
    sys.exit(main())
