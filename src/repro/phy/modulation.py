"""Classic CSS (LoRa-style) modulation — the single-user baseline PHY.

In classic CSS, one device conveys ``SF`` bits per symbol by transmitting
one of ``2^SF`` cyclic shifts (Fig. 2a of the paper). NetScatter's
distributed coding reuses the same symbols but assigns shifts to devices;
this module provides the per-symbol modulator/demodulator pair used by the
LoRa backscatter baseline and by tests that validate the chirp algebra.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError, DecodingError
from repro.phy.chirp import ChirpParams, cyclic_shifted_upchirp
from repro.phy.demodulation import Demodulator
from repro.utils.bits import bits_to_int, int_to_bits


class CssModulator:
    """Maps bit groups to cyclic-shifted upchirps (classic LoRa mapping)."""

    def __init__(self, params: ChirpParams) -> None:
        self._params = params

    @property
    def params(self) -> ChirpParams:
        return self._params

    def modulate_symbol(self, value: int) -> np.ndarray:
        """One symbol carrying the ``SF``-bit ``value`` as a cyclic shift."""
        if not 0 <= value < self._params.n_shifts:
            raise ConfigurationError(
                f"symbol value must be in [0, {self._params.n_shifts}), "
                f"got {value}"
            )
        return cyclic_shifted_upchirp(self._params, value)

    def modulate_bits(self, bits: Sequence[int]) -> np.ndarray:
        """Modulate a bit sequence into a frame of CSS symbols.

        The bit count must be a multiple of ``SF``.
        """
        sf = self._params.spreading_factor
        if len(bits) % sf != 0:
            raise ConfigurationError(
                f"bit count {len(bits)} is not a multiple of SF={sf}"
            )
        symbols = [
            self.modulate_symbol(bits_to_int(bits[i : i + sf]))
            for i in range(0, len(bits), sf)
        ]
        if not symbols:
            return np.zeros(0, dtype=complex)
        return np.concatenate(symbols)


class CssDemodulator:
    """Recovers bit groups from classic CSS frames (maximum-peak decision)."""

    def __init__(self, params: ChirpParams, zero_pad_factor: int = 10) -> None:
        self._params = params
        self._demod = Demodulator(params, zero_pad_factor=zero_pad_factor)

    @property
    def params(self) -> ChirpParams:
        return self._params

    def demodulate_symbol(self, symbol: np.ndarray) -> int:
        """Decode one symbol to its ``SF``-bit value."""
        return self._demod.classic_decode(symbol)

    def demodulate_bits(self, frame: np.ndarray) -> List[int]:
        """Decode a frame of symbols back into bits."""
        frame = np.asarray(frame, dtype=complex)
        n = self._params.n_samples
        if frame.size % n != 0:
            raise DecodingError(
                f"frame length {frame.size} is not a multiple of {n}"
            )
        bits: List[int] = []
        sf = self._params.spreading_factor
        for i in range(0, frame.size, n):
            value = self.demodulate_symbol(frame[i : i + n])
            bits.extend(int_to_bits(value, sf))
        return bits
