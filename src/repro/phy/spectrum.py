"""Spectral analysis utilities: side-lobe profile, PSD and spectrogram.

Fig. 8 of the paper plots the zero-padded FFT power spectrum of a single
dechirped upchirp: a sinc main lobe with side lobes at -13 dB (1.5 bins
away, the SKIP = 2 neighbour) and -21 dB (2.5 bins away, SKIP = 3). These
levels set the near-far dynamic range and are produced here directly from
the window transform, plus helpers for spectrograms (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpParams, upchirp
from repro.phy.demodulation import Demodulator


@dataclass(frozen=True)
class SideLobeProfile:
    """Normalised power profile of a dechirped chirp on the padded grid.

    ``power_db[i]`` is the power at interpolated bin ``i`` relative to the
    main-lobe peak (0 dB at bin 0).
    """

    power_db: np.ndarray
    zero_pad_factor: int

    @property
    def n_bins(self) -> int:
        return self.power_db.size

    def at_natural_bin(self, offset: float) -> float:
        """Profile level (dB) at a natural-bin offset from the peak."""
        idx = int(round(offset * self.zero_pad_factor)) % self.n_bins
        return float(self.power_db[idx])

    def worst_side_lobe_beyond(self, offset_bins: float) -> float:
        """Maximum side-lobe level at natural-bin distance >= ``offset_bins``.

        This is the interference floor a SKIP-spaced neighbour faces: a
        device ``SKIP`` bins away sees at worst this level leaking from a
        unit-power transmitter.
        """
        zp = self.zero_pad_factor
        lo = int(round(offset_bins * zp))
        hi = self.n_bins - lo
        if lo >= hi:
            raise ConfigurationError("offset exceeds half the spectrum")
        return float(np.max(self.power_db[lo:hi]))

    def worst_in_range(self, lo_bins: float, hi_bins: float) -> float:
        """Maximum level over natural-bin offsets ``[lo_bins, hi_bins]``.

        The paper's Fig. 8 annotations are this quantity over a SKIP-
        spaced neighbour's residual-offset window (neighbour distance
        +/- half a bin): about -13 dB for SKIP = 2 (range [1.5, 2.5],
        the first sinc side lobe) and -21 dB for SKIP = 3 (range
        [2.5, 3.5], the third lobe).
        """
        if not 0.0 <= lo_bins < hi_bins:
            raise ConfigurationError("need 0 <= lo < hi")
        zp = self.zero_pad_factor
        lo = int(round(lo_bins * zp))
        hi = int(round(hi_bins * zp))
        if hi >= self.n_bins:
            raise ConfigurationError("range exceeds the spectrum")
        return float(np.max(self.power_db[lo : hi + 1]))


def side_lobe_profile(
    params: ChirpParams, zero_pad_factor: int = 10
) -> SideLobeProfile:
    """Zero-padded power spectrum of one dechirped, shift-0 upchirp.

    Reproduces Fig. 8: the dechirped symbol is a pure tone seen through a
    rectangular window of ``2^SF`` samples, so the padded FFT traces the
    Dirichlet (periodic sinc) kernel.
    """
    demod = Demodulator(params, zero_pad_factor=zero_pad_factor)
    result = demod.dechirp(upchirp(params))
    power = result.power
    peak = float(np.max(power))
    with np.errstate(divide="ignore"):
        power_db = 10.0 * np.log10(power / peak)
    return SideLobeProfile(power_db=power_db, zero_pad_factor=zero_pad_factor)


def dirichlet_side_lobe_db(offset_bins: float, n_samples: int) -> float:
    """Analytic Dirichlet-kernel level at a natural-bin offset.

    Closed form for the rectangular window: ``|sin(pi*x) / (N*sin(pi*x/N))``
    in power dB. Used to cross-check the simulated profile (the -13.3 dB /
    -20.8 dB landmarks quoted as -13 / -21 dB in the paper).
    """
    x = float(offset_bins)
    if abs(x % n_samples) < 1e-12:
        return 0.0
    num = np.sin(np.pi * x)
    den = n_samples * np.sin(np.pi * x / n_samples)
    value = abs(num / den)
    if value <= 0.0:
        return float("-inf")
    return float(20.0 * np.log10(value))


def power_spectral_density(
    signal: np.ndarray, sample_rate_hz: float, nfft: int = 1024
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch-averaged PSD of a complex baseband signal.

    Returns (frequency axis in Hz, PSD in dB). Frequencies are centred
    (fftshifted) to match the paper's spectrogram axes.
    """
    from scipy.signal import welch

    signal = np.asarray(signal, dtype=complex)
    if signal.size < nfft:
        nfft = max(8, signal.size)
    freqs, psd = welch(
        signal,
        fs=sample_rate_hz,
        nperseg=nfft,
        return_onesided=False,
        detrend=False,
    )
    order = np.argsort(np.fft.fftshift(np.fft.fftfreq(len(freqs))))
    freqs = np.fft.fftshift(freqs)
    psd = np.fft.fftshift(psd)
    del order
    with np.errstate(divide="ignore"):
        psd_db = 10.0 * np.log10(np.maximum(psd, 1e-30))
    return freqs, psd_db


def spectrogram(
    signal: np.ndarray, sample_rate_hz: float, nfft: int = 256
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spectrogram of a complex baseband signal (Fig. 16).

    Returns (frequencies Hz, times s, power dB), with frequencies centred.
    """
    from scipy.signal import stft

    signal = np.asarray(signal, dtype=complex)
    if signal.size < nfft:
        raise ConfigurationError("signal shorter than one STFT window")
    freqs, times, z = stft(
        signal,
        fs=sample_rate_hz,
        nperseg=nfft,
        return_onesided=False,
    )
    freqs = np.fft.fftshift(freqs)
    z = np.fft.fftshift(z, axes=0)
    with np.errstate(divide="ignore"):
        power_db = 20.0 * np.log10(np.maximum(np.abs(z), 1e-15))
    return freqs, times, power_db


def instantaneous_frequency(
    signal: np.ndarray, sample_rate_hz: float
) -> np.ndarray:
    """Instantaneous frequency track of a complex signal (Hz).

    Handy for verifying chirp slopes and the bandwidth-aggregation alias
    behaviour of Fig. 5.
    """
    signal = np.asarray(signal, dtype=complex)
    if signal.size < 2:
        raise ConfigurationError("need at least two samples")
    phase_steps = np.angle(signal[1:] * np.conjugate(signal[:-1]))
    return phase_steps * sample_rate_hz / (2.0 * np.pi)


def occupied_bins(power_db: np.ndarray, threshold_db: float) -> List[int]:
    """Indices of bins whose level exceeds ``threshold_db`` below the peak."""
    power_db = np.asarray(power_db, dtype=float)
    peak = float(np.max(power_db))
    return [int(i) for i in np.flatnonzero(power_db >= peak + threshold_db)]
