"""Sparse spectral readout: evaluate the padded FFT only where it is read.

The concurrent receiver takes a ``2^SF * zp``-point zero-padded FFT per
symbol but then reads only a handful of interpolated bins: each device's
search window around its assigned shift, plus a probe set for the noise
floor. For a 2-device Fig. 12 sweep that is ~30 useful bins out of 5120
computed — the dominant cost of every bin-domain Monte-Carlo sweep.

This module computes exactly those bins with a Goertzel/CZT-style matmul.
The zero-padded FFT of a length-``N`` dechirped symbol at interpolated
bin ``q`` is

    X[q] = sum_{t < N} x[t] * d[t] * exp(-2j*pi*q*t / (N*zp))

(``d`` the baseline downchirp), so stacking the selected ``q`` as columns
of a precomputed ``(N, K)`` operator turns a whole ``(n_symbols, N)``
round — or a ``(n_rounds * n_symbols, N)`` batch — into one BLAS matmul.
Values agree with ``np.fft.fft(x * d, N*zp)[q]`` to floating-point
round-off, which the equivalence tests pin down at the bit-decision
level.

The operator is built once per receiver (the bins depend only on the
assignments) and reused for every round — the caching the per-call FFT
path never had.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.errors import DecodingError
from repro.phy.chirp import ChirpParams, downchirp


class SparseReadout:
    """Precomputed sparse evaluation of the dechirped, padded spectrum.

    Parameters
    ----------
    params:
        Chirp parameters of the symbols to read.
    zero_pad_factor:
        Interpolation factor of the (virtual) padded grid.
    bin_indices:
        Interpolated-grid indices to evaluate, in ``[0, 2^SF * zp)``.
        Duplicates are allowed (windows of nearby devices may overlap).
    fold_downchirp:
        When True (default) the baseline downchirp is folded into the
        operator, so inputs are raw *pre-dechirp* symbols. When False
        inputs must already be dechirped.
    """

    def __init__(
        self,
        params: ChirpParams,
        zero_pad_factor: int,
        bin_indices: np.ndarray,
        fold_downchirp: bool = True,
    ) -> None:
        if zero_pad_factor < 1:
            raise DecodingError("zero_pad_factor must be >= 1")
        bin_indices = np.asarray(bin_indices, dtype=np.int64).ravel()
        n = params.n_samples
        n_grid = n * int(zero_pad_factor)
        if bin_indices.size == 0:
            raise DecodingError("need at least one readout bin")
        if np.any(bin_indices < 0) or np.any(bin_indices >= n_grid):
            raise DecodingError(
                f"readout bins must lie in [0, {n_grid})"
            )
        self._params = params
        self._zero_pad_factor = int(zero_pad_factor)
        self._bin_indices = bin_indices
        t = np.arange(n, dtype=float)
        op = np.exp(
            (-2j * np.pi / n_grid) * np.outer(t, bin_indices.astype(float))
        )
        if fold_downchirp:
            op *= downchirp(params)[:, None]
        self._op = op

    @property
    def params(self) -> ChirpParams:
        return self._params

    @property
    def zero_pad_factor(self) -> int:
        return self._zero_pad_factor

    @property
    def bin_indices(self) -> np.ndarray:
        """The interpolated-grid indices this readout evaluates."""
        return self._bin_indices

    @property
    def n_bins(self) -> int:
        """Number of evaluated bins (columns of the operator)."""
        return self._bin_indices.size

    @property
    def operator_bytes(self) -> int:
        """Memory footprint of the precomputed operator."""
        return self._op.nbytes

    def spectrum(self, symbols: np.ndarray) -> np.ndarray:
        """Complex spectrum values at the readout bins.

        ``symbols`` is ``(..., 2^SF)``; the result is ``(..., K)``.
        """
        symbols = np.asarray(symbols, dtype=complex)
        n = self._params.n_samples
        if symbols.shape[-1] != n:
            raise DecodingError(
                f"expected {n} samples per symbol, got {symbols.shape[-1]}"
            )
        return symbols @ self._op

    def powers(self, symbols: np.ndarray) -> np.ndarray:
        """Power spectrum values at the readout bins."""
        values = self.spectrum(symbols)
        return (values.real**2 + values.imag**2)

    def noise_covariance(self) -> np.ndarray:
        """Covariance of unit-power complex AWGN seen through this readout.

        For ``n`` iid circular CN(0, 1) time samples the readout values
        ``y = n @ op`` are jointly circular Gaussian with
        ``E[y y^H] = op^T conj(op)`` (the folded downchirp drops out:
        it is unit-modulus). Scaling by the physical noise power gives
        the exact distribution of the noise at the read bins, which lets
        the decode engine draw noise *after* the readout instead of over
        the full time-domain tensor.
        """
        return self._op.T @ np.conjugate(self._op)


def full_fft_values(
    params: ChirpParams,
    zero_pad_factor: int,
    symbols: np.ndarray,
    bin_indices: Optional[np.ndarray] = None,
    fold_downchirp: bool = True,
) -> np.ndarray:
    """Exact reference: zero-padded FFT values, optionally column-gathered.

    The opt-in exact path of the decode engine: identical readout layout
    to :class:`SparseReadout` but computed through ``np.fft.fft`` on the
    full padded grid. Kept for verification and for workloads where the
    number of read bins approaches the grid size.
    """
    symbols = np.asarray(symbols, dtype=complex)
    n = params.n_samples
    if symbols.shape[-1] != n:
        raise DecodingError(
            f"expected {n} samples per symbol, got {symbols.shape[-1]}"
        )
    if fold_downchirp:
        symbols = symbols * downchirp(params)
    spectrum = np.fft.fft(symbols, n=n * int(zero_pad_factor), axis=-1)
    if bin_indices is None:
        return spectrum
    return spectrum[..., np.asarray(bin_indices, dtype=np.int64)]


def full_fft_powers(
    params: ChirpParams,
    zero_pad_factor: int,
    symbols: np.ndarray,
    bin_indices: Optional[np.ndarray] = None,
    fold_downchirp: bool = True,
) -> np.ndarray:
    """Power form of :func:`full_fft_values`."""
    values = full_fft_values(
        params, zero_pad_factor, symbols, bin_indices, fold_downchirp
    )
    return values.real**2 + values.imag**2


@lru_cache(maxsize=32)
def natural_probe_readout(
    params: ChirpParams,
    zero_pad_factor: int,
    stride: int,
    fold_downchirp: bool = True,
) -> SparseReadout:
    """Readout of every ``stride``-th natural bin, shared across receivers.

    The noise-probe grid depends only on the chirp parameters, so one
    operator serves every receiver at the same operating point. Distinct
    natural bins are exact DFT frequencies of the length-``2^SF`` window,
    hence mutually orthogonal: the probe noise covariance is ``2^SF * I``
    (asserted by the tests), which the decode engine exploits to draw
    probe noise independently.
    """
    n = params.n_samples
    bins = np.arange(0, n, int(stride)) * int(zero_pad_factor)
    return SparseReadout(
        params, zero_pad_factor, bins, fold_downchirp=fold_downchirp
    )
