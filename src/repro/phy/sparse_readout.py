"""Sparse spectral readout: evaluate the padded FFT only where it is read.

The concurrent receiver takes a ``2^SF * zp``-point zero-padded FFT per
symbol but then reads only a handful of interpolated bins: each device's
search window around its assigned shift, plus a probe set for the noise
floor. For a 2-device Fig. 12 sweep that is ~30 useful bins out of 5120
computed — the dominant cost of every bin-domain Monte-Carlo sweep.

This module computes exactly those bins with a Goertzel/CZT-style matmul.
The zero-padded FFT of a length-``N`` dechirped symbol at interpolated
bin ``q`` is

    X[q] = sum_{t < N} x[t] * d[t] * exp(-2j*pi*q*t / (N*zp))

(``d`` the baseline downchirp), so stacking the selected ``q`` as columns
of a precomputed ``(N, K)`` operator turns a whole ``(n_symbols, N)``
round — or a ``(n_rounds * n_symbols, N)`` batch — into one BLAS matmul.
Values agree with ``np.fft.fft(x * d, N*zp)[q]`` to floating-point
round-off, which the equivalence tests pin down at the bit-decision
level.

The operator is built once per receiver (the bins depend only on the
assignments) and reused for every round — the caching the per-call FFT
path never had.

For *tone-sum* inputs the time domain can be skipped altogether: a
device whose dechirped contribution is the pure tone
``a * exp(j*(2*pi*b*t/N + phi))`` reads out at interpolated bin ``q``
as ``a * exp(j*phi) * D_N(b - q/zp)`` where ``D_N`` is the Dirichlet
kernel (:func:`dirichlet_kernel`). :meth:`SparseReadout.tone_kernel`
evaluates that closed form at every readout bin without materialising
any ``n_samples``-length waveform — the analytic composition path of
:func:`repro.core.dcss.compose_readout`. The operator matrix itself is
built lazily so purely analytic consumers never pay for it.

White time-domain noise maps linearly onto any readout, and the
covariance it acquires depends only on bin *separations* (it is the
Dirichlet kernel of the separation), so equispaced readouts have
Toeplitz noise covariances: :meth:`SparseReadout.analytic_noise_covariance`
for a readout's own bins, :func:`located_bin_noise_covariance` for the
3-bin located ``±1`` neighbourhood the payload decisions read — the one
3×3 factor that serves every located position of every device in the
engine's ``noise_mode="payload"`` stream.

Doctest — the sparse readout *is* the padded FFT at the read columns,
and the closed-form kernel of an on-grid tone is the full window power:

>>> import numpy as np
>>> from repro.phy.chirp import ChirpParams
>>> from repro.phy.sparse_readout import (
...     SparseReadout, dirichlet_kernel, full_fft_values)
>>> params = ChirpParams(bandwidth_hz=125e3, spreading_factor=6)
>>> bins = np.array([8, 9, 10])
>>> readout = SparseReadout(params, zero_pad_factor=4, bin_indices=bins)
>>> rng = np.random.default_rng(0)
>>> symbol = rng.standard_normal(64) + 1j * rng.standard_normal(64)
>>> sparse = readout.spectrum(symbol)
>>> exact = full_fft_values(params, 4, symbol, bin_indices=bins)
>>> bool(np.allclose(sparse, exact))
True
>>> int(dirichlet_kernel(64, np.array([0.0]))[0].real)  # unit tone, on-grid
64
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.errors import DecodingError
from repro.phy.chirp import ChirpParams, downchirp

#: Magnitude of ``sin(pi*u/N)`` below which the Dirichlet ratio switches
#: to its L'Hopital form ``N*cos(pi*u)/cos(pi*u/N)``. Both branches are
#: accurate to ~1e-7 relative at the crossover, so decisions cannot
#: depend on which side of the threshold an offset lands.
_DIRICHLET_SINGULAR_TOL = 1e-6


def dirichlet_kernel(n_samples: int, offsets: np.ndarray) -> np.ndarray:
    """Closed-form readout of a unit tone: ``sum_{t<N} exp(2j*pi*u*t/N)``.

    ``offsets`` is the (possibly fractional) bin distance ``u`` between
    the tone and the evaluated frequency, in *natural* bins. The sum has
    the closed form

        ``D_N(u) = exp(j*pi*u*(N-1)/N) * sin(pi*u) / sin(pi*u/N)``

    with the removable singularities at ``u = 0 (mod N)`` — where the
    value is exactly ``N`` — filled via L'Hopital. ``D_N`` is periodic
    in ``u`` with period ``N`` and satisfies ``D_N(-u) = conj(D_N(u))``.
    """
    n = int(n_samples)
    if n < 1:
        raise DecodingError("n_samples must be >= 1")
    u = np.asarray(offsets, dtype=float)
    phase = np.exp(1j * (np.pi * (n - 1) / n) * u)
    den = np.sin(np.pi * u / n)
    near = np.abs(den) < _DIRICHLET_SINGULAR_TOL
    ratio = np.sin(np.pi * u) / np.where(near, 1.0, den)
    limit = n * np.cos(np.pi * u) / np.cos(np.pi * u / n)
    return phase * np.where(near, limit, ratio)


def located_bin_noise_covariance(
    params: ChirpParams, zero_pad_factor: int, width: int = 3
) -> np.ndarray:
    """Unit-AWGN covariance of ``width`` *adjacent* interpolated bins.

    Entry ``[k, j]`` is ``D_N((j - k) / zp)`` — the covariance white
    time-domain noise acquires between interpolated bins ``j - k`` grid
    steps apart. The matrix is Hermitian Toeplitz because the covariance
    depends only on the separation, which is the property the payload
    noise path of the decode engine exploits: the located peak ``±1``
    read is always three adjacent interpolated bins, so this one
    ``width=3`` covariance (and its factor,
    :func:`repro.phy.noise.covariance_factor`) serves every located
    position in every device's window. Bit-identical to the
    corresponding block of any equispaced window's
    :meth:`SparseReadout.analytic_noise_covariance`.
    """
    if int(width) < 1:
        raise DecodingError("width must be >= 1")
    if int(zero_pad_factor) < 1:
        raise DecodingError("zero_pad_factor must be >= 1")
    q = np.arange(int(width), dtype=float)
    return dirichlet_kernel(
        params.n_samples,
        (q[None, :] - q[:, None]) / int(zero_pad_factor),
    )


class SparseReadout:
    """Precomputed sparse evaluation of the dechirped, padded spectrum.

    Parameters
    ----------
    params:
        Chirp parameters of the symbols to read.
    zero_pad_factor:
        Interpolation factor of the (virtual) padded grid.
    bin_indices:
        Interpolated-grid indices to evaluate, in ``[0, 2^SF * zp)``.
        Duplicates are allowed (windows of nearby devices may overlap).
    fold_downchirp:
        When True (default) the baseline downchirp is folded into the
        operator, so inputs are raw *pre-dechirp* symbols. When False
        inputs must already be dechirped.
    """

    def __init__(
        self,
        params: ChirpParams,
        zero_pad_factor: int,
        bin_indices: np.ndarray,
        fold_downchirp: bool = True,
    ) -> None:
        if zero_pad_factor < 1:
            raise DecodingError("zero_pad_factor must be >= 1")
        bin_indices = np.asarray(bin_indices, dtype=np.int64).ravel()
        n = params.n_samples
        n_grid = n * int(zero_pad_factor)
        if bin_indices.size == 0:
            raise DecodingError("need at least one readout bin")
        if np.any(bin_indices < 0) or np.any(bin_indices >= n_grid):
            raise DecodingError(
                f"readout bins must lie in [0, {n_grid})"
            )
        self._params = params
        self._zero_pad_factor = int(zero_pad_factor)
        self._bin_indices = bin_indices
        self._fold_downchirp = bool(fold_downchirp)
        self._op: Optional[np.ndarray] = None
        self._bin_trig: Optional[tuple] = None

    @property
    def _operator(self) -> np.ndarray:
        """The ``(N, K)`` readout matrix, built on first time-domain use.

        Purely analytic consumers (:meth:`tone_kernel`) never touch it,
        so receivers on the analytic composition path skip the
        ``N * K`` complex-exponential build entirely.
        """
        if self._op is None:
            params = self._params
            n = params.n_samples
            n_grid = n * self._zero_pad_factor
            t = np.arange(n, dtype=float)
            op = np.exp(
                (-2j * np.pi / n_grid)
                * np.outer(t, self._bin_indices.astype(float))
            )
            if self._fold_downchirp:
                op *= downchirp(params)[:, None]
            self._op = op
        return self._op

    @property
    def params(self) -> ChirpParams:
        return self._params

    @property
    def zero_pad_factor(self) -> int:
        return self._zero_pad_factor

    @property
    def bin_indices(self) -> np.ndarray:
        """The interpolated-grid indices this readout evaluates."""
        return self._bin_indices

    @property
    def n_bins(self) -> int:
        """Number of evaluated bins (columns of the operator)."""
        return self._bin_indices.size

    @property
    def operator_materialised(self) -> bool:
        """Whether the lazy ``(N, K)`` operator has been built."""
        return self._op is not None

    @property
    def operator_bytes(self) -> int:
        """Actual memory held by the ``(N, K)`` operator right now.

        0 while the lazy operator is unmaterialised — introspection must
        never force the build (analytic-path receivers live their whole
        life without it), and reporting the hypothetical size would
        overstate a purely analytic consumer's footprint by the one
        array it deliberately avoids allocating.
        """
        if self._op is None:
            return 0
        return self._op.nbytes

    def spectrum(self, symbols: np.ndarray) -> np.ndarray:
        """Complex spectrum values at the readout bins.

        ``symbols`` is ``(..., 2^SF)``; the result is ``(..., K)``.
        """
        symbols = np.asarray(symbols, dtype=complex)
        n = self._params.n_samples
        if symbols.shape[-1] != n:
            raise DecodingError(
                f"expected {n} samples per symbol, got {symbols.shape[-1]}"
            )
        return symbols @ self._operator

    def powers(self, symbols: np.ndarray) -> np.ndarray:
        """Power spectrum values at the readout bins."""
        values = self.spectrum(symbols)
        return (values.real**2 + values.imag**2)

    def noise_covariance(self) -> np.ndarray:
        """Covariance of unit-power complex AWGN seen through this readout.

        For ``n`` iid circular CN(0, 1) time samples the readout values
        ``y = n @ op`` are jointly circular Gaussian with
        ``E[y y^H] = op^T conj(op)`` (the folded downchirp drops out:
        it is unit-modulus). Scaling by the physical noise power gives
        the exact distribution of the noise at the read bins, which lets
        the decode engine draw noise *after* the readout instead of over
        the full time-domain tensor. Entry ``[k, j]`` has the closed form
        ``D_N((q_j - q_k) / zp)`` (see :func:`dirichlet_kernel`), which
        :func:`analytic_noise_covariance` evaluates without the operator.
        """
        return self._operator.T @ np.conjugate(self._operator)

    def analytic_noise_covariance(self) -> np.ndarray:
        """Closed-form :meth:`noise_covariance`, operator-free.

        Bit-for-bit independent of ``fold_downchirp`` (the unit-modulus
        fold cancels only up to round-off in the matmul form), so noise
        drawn from this covariance is identical across the pre-dechirp
        and dechirped-domain readout plans.
        """
        q = self._bin_indices.astype(float)
        return dirichlet_kernel(
            self._params.n_samples,
            (q[None, :] - q[:, None]) / self._zero_pad_factor,
        )

    @property
    def tone_phase_coeff(self) -> float:
        """Coefficient of the separable Dirichlet phase, ``pi*(N-1)/N``.

        ``D_N(b - q/zp) = exp(1j*c*b) * exp(-1j*c*q/zp) * tone_ratio``
        with ``c`` this coefficient: the complex part of the kernel is
        rank one over the ``(tones, bins)`` grid, so composition paths
        fold ``exp(1j*c*b)`` into the per-device weights and
        ``exp(-1j*c*q/zp)`` into a final per-bin scale — the big matmul
        then runs on the *real* ratio matrix.
        """
        n = self._params.n_samples
        return np.pi * (n - 1) / n

    def bin_phase_factor(self) -> np.ndarray:
        """Per-readout-bin Dirichlet phase, ``exp(-1j*c*q/zp)``."""
        return self._trig_tables()[0]

    def _trig_tables(self) -> tuple:
        """Cached per-bin phase and sin/cos tables of the tone kernel."""
        if self._bin_trig is None:
            n = self._params.n_samples
            qp = self._bin_indices / float(self._zero_pad_factor)
            self._bin_trig = (
                np.exp(-1j * self.tone_phase_coeff * qp),
                np.sin(np.pi * qp),
                np.cos(np.pi * qp),
                np.sin(np.pi * qp / n),
                np.cos(np.pi * qp / n),
            )
        return self._bin_trig

    def tone_ratio(
        self, effective_bins: np.ndarray, dtype=np.float64
    ) -> np.ndarray:
        """Real part-ratio of the tone kernel, ``sin(pi*u)/sin(pi*u/N)``.

        ``effective_bins`` is ``(..., n_tones)``; the result is the real
        ``(..., n_tones, K)`` matrix such that multiplying by the
        separable phases (:attr:`tone_phase_coeff`) yields
        :meth:`tone_kernel`. Evaluated via angle-difference identities —
        per-bin trigonometry is cached, per-tone trigonometry is linear
        in the inputs, and the ``(n_tones, K)`` grid sees only in-place
        multiply/subtract/divide passes (no transcendentals), which is
        what makes per-round kernel builds cheaper than even one
        time-domain readout matmul. ``dtype=numpy.float32`` stores the
        result single-precision for the downstream real GEMMs; the
        evaluation itself stays double — the denominator
        ``sin(pi*u/N)`` suffers catastrophic cancellation in float32
        for tones that graze a readout bin, which would corrupt
        main-lobe values just outside the singular-limit branch.
        """
        b = np.asarray(effective_bins, dtype=float)
        n = self._params.n_samples
        _, sq, cq, sqn, cqn = self._trig_tables()
        sb, cb = np.sin(np.pi * b), np.cos(np.pi * b)
        sbn, cbn = np.sin(np.pi * b / n), np.cos(np.pi * b / n)
        dtype = np.dtype(dtype)
        # sin(pi*(b - q)) and sin(pi*(b - q)/N) as outer products, built
        # with in-place passes: the grid is large and bandwidth-bound.
        ratio = sb[..., None] * cq
        ratio -= cb[..., None] * sq
        den = sbn[..., None] * cqn
        den -= cbn[..., None] * sqn
        near = np.abs(den) < _DIRICHLET_SINGULAR_TOL
        den[near] = 1.0
        ratio /= den
        if np.any(near):
            # L'Hopital limit N*cos(pi*u)/cos(pi*u/N) at u ~ 0 (mod N),
            # assembled from the same per-axis trig at just those entries.
            idx = np.nonzero(near)
            bi, qi = idx[:-1], idx[-1]
            cos_u = cb[bi] * cq[qi] + sb[bi] * sq[qi]
            cos_un = cbn[bi] * cqn[qi] + sbn[bi] * sqn[qi]
            ratio[idx] = n * cos_u / cos_un
        if dtype != np.float64:
            ratio = ratio.astype(dtype)
        return ratio

    def tone_kernel(self, effective_bins: np.ndarray) -> np.ndarray:
        """Closed-form readout of unit tones at fractional natural bins.

        ``effective_bins`` is ``(..., n_tones)``; the result is
        ``(..., n_tones, K)`` with entry ``D_N(b - q_k / zp)`` — the
        value the padded FFT of the dechirped unit tone at fractional
        bin ``b`` takes at readout bin ``q_k``. A weighted sum of rows
        therefore reproduces :meth:`spectrum` of a composed tone-sum
        symbol to round-off, with no waveform in between.

        Hot paths (:func:`repro.core.dcss.compose_readout`) use the
        factored :meth:`tone_ratio` form directly and never materialise
        this complex matrix; it is the reference/unit-test surface.
        """
        b = np.asarray(effective_bins, dtype=float)
        ratio = self.tone_ratio(b)
        phase_b = np.exp(1j * self.tone_phase_coeff * b)
        return (phase_b[..., None] * self.bin_phase_factor()) * ratio


def full_fft_values(
    params: ChirpParams,
    zero_pad_factor: int,
    symbols: np.ndarray,
    bin_indices: Optional[np.ndarray] = None,
    fold_downchirp: bool = True,
) -> np.ndarray:
    """Exact reference: zero-padded FFT values, optionally column-gathered.

    The opt-in exact path of the decode engine: identical readout layout
    to :class:`SparseReadout` but computed through ``np.fft.fft`` on the
    full padded grid. Kept for verification and for workloads where the
    number of read bins approaches the grid size.
    """
    symbols = np.asarray(symbols, dtype=complex)
    n = params.n_samples
    if symbols.shape[-1] != n:
        raise DecodingError(
            f"expected {n} samples per symbol, got {symbols.shape[-1]}"
        )
    if fold_downchirp:
        symbols = symbols * downchirp(params)
    spectrum = np.fft.fft(symbols, n=n * int(zero_pad_factor), axis=-1)
    if bin_indices is None:
        return spectrum
    return spectrum[..., np.asarray(bin_indices, dtype=np.int64)]


def full_fft_powers(
    params: ChirpParams,
    zero_pad_factor: int,
    symbols: np.ndarray,
    bin_indices: Optional[np.ndarray] = None,
    fold_downchirp: bool = True,
) -> np.ndarray:
    """Power form of :func:`full_fft_values`."""
    values = full_fft_values(
        params, zero_pad_factor, symbols, bin_indices, fold_downchirp
    )
    return values.real**2 + values.imag**2


@lru_cache(maxsize=32)
def natural_probe_readout(
    params: ChirpParams,
    zero_pad_factor: int,
    stride: int,
    fold_downchirp: bool = True,
) -> SparseReadout:
    """Readout of every ``stride``-th natural bin, shared across receivers.

    The noise-probe grid depends only on the chirp parameters, so one
    operator serves every receiver at the same operating point. Distinct
    natural bins are exact DFT frequencies of the length-``2^SF`` window,
    hence mutually orthogonal: the probe noise covariance is ``2^SF * I``
    (asserted by the tests), which the decode engine exploits to draw
    probe noise independently.
    """
    n = params.n_samples
    bins = np.arange(0, n, int(stride)) * int(zero_pad_factor)
    return SparseReadout(
        params, zero_pad_factor, bins, fold_downchirp=fold_downchirp
    )
