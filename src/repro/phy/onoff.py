"""ON-OFF keyed transmission over one assigned cyclic shift.

This is the device half of distributed CSS coding (Fig. 2b): each device
owns one cyclic shift and sends '1' by transmitting its shifted upchirp and
'0' by staying silent for the symbol duration. Per-device bitrate is one
bit per symbol, ``BW / 2^SF`` bits/s.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.chirp import (
    ChirpParams,
    cyclic_shifted_downchirp,
    cyclic_shifted_upchirp,
)
from repro.utils.conversions import amplitude_from_db


class OnOffKeyedTransmitter:
    """Per-device OOK transmitter over an assigned cyclic shift.

    Parameters
    ----------
    params:
        Chirp configuration shared by the whole network.
    cyclic_shift:
        The device's assigned shift; its FFT bin at the receiver.
    power_gain_db:
        Transmit power gain relative to the device's maximum (0, -4 or
        -10 dB on the paper's hardware); applied as an amplitude scale.
    """

    def __init__(
        self,
        params: ChirpParams,
        cyclic_shift: int,
        power_gain_db: float = 0.0,
    ) -> None:
        if not 0 <= int(cyclic_shift) < params.n_shifts:
            raise ConfigurationError(
                f"cyclic shift must be in [0, {params.n_shifts}), "
                f"got {cyclic_shift}"
            )
        self._params = params
        self._shift = int(cyclic_shift)
        self._power_gain_db = float(power_gain_db)

    @property
    def params(self) -> ChirpParams:
        return self._params

    @property
    def cyclic_shift(self) -> int:
        return self._shift

    @property
    def power_gain_db(self) -> float:
        return self._power_gain_db

    @power_gain_db.setter
    def power_gain_db(self, value: float) -> None:
        self._power_gain_db = float(value)

    @property
    def bitrate_bps(self) -> float:
        """Per-device OOK bitrate, one bit per chirp symbol."""
        return self._params.symbol_rate_hz

    def _amplitude(self) -> float:
        return amplitude_from_db(self._power_gain_db)

    def symbol(self, bit: int) -> np.ndarray:
        """One OOK symbol: the shifted upchirp for '1', silence for '0'."""
        if bit not in (0, 1):
            raise ConfigurationError(f"bit must be 0 or 1, got {bit!r}")
        n = self._params.n_samples
        if bit == 0:
            return np.zeros(n, dtype=complex)
        return self._amplitude() * cyclic_shifted_upchirp(
            self._params, self._shift
        )

    def preamble(
        self, n_upchirps: int = 6, n_downchirps: int = 2
    ) -> np.ndarray:
        """Preamble of the device's own shifted up- and downchirps.

        All devices transmit their preambles concurrently, each on its own
        shift (Section 3.3.1), so the AP detects active devices from the
        repeated peaks and learns a per-device power reference.
        """
        up = cyclic_shifted_upchirp(self._params, self._shift)
        down = cyclic_shifted_downchirp(self._params, self._shift)
        parts = [up] * int(n_upchirps) + [down] * int(n_downchirps)
        return self._amplitude() * np.concatenate(parts)

    def payload(self, bits: Sequence[int]) -> np.ndarray:
        """OOK-modulated payload frame for ``bits``."""
        if len(bits) == 0:
            return np.zeros(0, dtype=complex)
        return np.concatenate([self.symbol(b) for b in bits])

    def packet(
        self,
        bits: Sequence[int],
        n_upchirps: int = 6,
        n_downchirps: int = 2,
    ) -> np.ndarray:
        """Full packet: preamble followed by the OOK payload."""
        return np.concatenate(
            [self.preamble(n_upchirps, n_downchirps), self.payload(bits)]
        )
