"""Packet-start synchronisation from the up/down-chirp preamble.

Section 3.3.1: the preamble is six upchirps followed by two downchirps,
all carrying the device's own cyclic shift. Because a window of repeated
identical chirps mis-aligned by ``d`` samples is itself a cyclic shift, the
dechirped peak stays at full magnitude *inside* each run; only windows
straddling the up-to-down transition (or the packet edges) lose peak
energy. The synchroniser exploits this: it scores candidate symbol
alignments by the summed peak magnitudes of the six up-windows (dechirped
with a downchirp) and the two down-windows (dechirped with an upchirp) and
picks the alignment that maximises the score. This realises the paper's
"middle point between an upchirp and downchirp" estimator and is exact for
any mix of concurrent devices, since every device shares the boundary.

The up/down symmetry also separates CFO from timing: an upchirp at shift
``k`` with residual offset ``d`` and CFO ``f`` (in bins) peaks at
``k + d + f`` while the matching downchirp peaks at ``-(k + d) + f``, so
the half-sum isolates ``f`` (used by the frequency-offset measurements of
Fig. 14a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SynchronizationError
from repro.phy.chirp import ChirpParams, downchirp, upchirp
from repro.phy.demodulation import Demodulator


@dataclass(frozen=True)
class PacketSync:
    """Result of packet-start estimation.

    Attributes
    ----------
    start_sample:
        Estimated index of the first preamble sample in the stream.
    score:
        The alignment metric at the estimate (sum of eight peak magnitudes).
    searched:
        Number of candidate offsets evaluated.
    """

    start_sample: int
    score: float
    searched: int


class PreambleSynchronizer:
    """Estimates the packet start of concurrent NetScatter transmissions."""

    def __init__(
        self,
        params: ChirpParams,
        n_upchirps: int = 6,
        n_downchirps: int = 2,
    ) -> None:
        if n_upchirps < 1 or n_downchirps < 1:
            raise SynchronizationError(
                "preamble needs at least one upchirp and one downchirp"
            )
        self._params = params
        self._n_up = int(n_upchirps)
        self._n_down = int(n_downchirps)
        self._downchirp = downchirp(params)
        self._upchirp = upchirp(params)

    @property
    def params(self) -> ChirpParams:
        return self._params

    @property
    def preamble_samples(self) -> int:
        return (self._n_up + self._n_down) * self._params.n_samples

    def _window_peak(self, window: np.ndarray, reference: np.ndarray) -> float:
        despread = window * reference
        return float(np.max(np.abs(np.fft.fft(despread))))

    def alignment_score(self, stream: np.ndarray, start: int) -> float:
        """Preamble alignment metric at candidate ``start``.

        Sum of the dechirped peak magnitudes of the ``n_up`` up-windows and
        ``n_down`` down-windows. Maximised at the true packet start.
        """
        stream = np.asarray(stream, dtype=complex)
        n = self._params.n_samples
        end = start + self.preamble_samples
        if start < 0 or end > stream.size:
            raise SynchronizationError(
                f"candidate start {start} leaves the stream bounds"
            )
        score = 0.0
        for m in range(self._n_up):
            window = stream[start + m * n : start + (m + 1) * n]
            score += self._window_peak(window, self._downchirp)
        down_base = start + self._n_up * n
        for m in range(self._n_down):
            window = stream[down_base + m * n : down_base + (m + 1) * n]
            score += self._window_peak(window, self._upchirp)
        return score

    def refine_with_shifts(
        self,
        stream: np.ndarray,
        coarse_start: int,
        shifts,
        max_offset: int = 8,
    ) -> int:
        """Sample-accurate start refinement using the known assignments.

        A shift-``k`` upchirp matched-filters against the *base* upchirp
        with a thumbtack peak at ``symbol_start - k`` (the chirp
        ambiguity function is impulse-like). Since the receiver knows
        every assigned shift, the expected peak positions for candidate
        start ``t`` are ``t + m*N - k_i`` for every preamble symbol
        ``m`` and device ``i``; summing the measured correlation
        magnitude at those positions scores each candidate with the
        combined energy of the whole network, which stays sample-sharp
        at SNRs where the window-energy metric flattens.
        """
        stream = np.asarray(stream, dtype=complex)
        n = self._params.n_samples
        shifts = [int(k) % n for k in shifts]
        if not shifts:
            raise SynchronizationError("need at least one assigned shift")
        lo = coarse_start - max_offset - n
        hi = coarse_start + self._n_up * n + max_offset
        lo = max(0, lo)
        region = stream[lo : min(hi, stream.size)]
        if region.size < n + 1:
            raise SynchronizationError("stream too short for refinement")
        corr = np.abs(
            np.correlate(region, np.asarray(self._upchirp), mode="valid")
        )
        best_t, best_score = coarse_start, -np.inf
        for t in range(coarse_start - max_offset, coarse_start + max_offset + 1):
            positions = [
                t + m * n - k - lo
                for m in range(self._n_up)
                for k in shifts
            ]
            valid = [p for p in positions if 0 <= p < corr.size]
            if not valid:
                continue
            score = float(np.sum(corr[valid]))
            if score > best_score:
                best_t, best_score = t, score
        return best_t

    def synchronize(
        self,
        stream: np.ndarray,
        search_start: int = 0,
        search_span: Optional[int] = None,
        coarse_step: int = 8,
    ) -> PacketSync:
        """Find the packet start within ``[search_start, search_start+span)``.

        Two-stage search: a coarse pass at ``coarse_step``-sample stride
        followed by an exhaustive refinement of +/- ``coarse_step``
        samples around the coarse winner using the window-energy metric.
        When the caller knows the shift assignments (the receiver does),
        :meth:`refine_with_shifts` sharpens the estimate to the exact
        sample.
        """
        stream = np.asarray(stream, dtype=complex)
        if search_span is None:
            search_span = stream.size - self.preamble_samples - search_start
        if search_span <= 0:
            raise SynchronizationError("stream too short for a preamble")
        last = min(
            search_start + search_span,
            stream.size - self.preamble_samples,
        )
        if last < search_start:
            raise SynchronizationError("search window is empty")

        coarse_step = max(1, int(coarse_step))
        candidates = list(range(search_start, last + 1, coarse_step))
        searched = 0
        best_start, best_score = search_start, -np.inf
        for t in candidates:
            score = self.alignment_score(stream, t)
            searched += 1
            if score > best_score:
                best_start, best_score = t, score

        lo = max(search_start, best_start - coarse_step + 1)
        hi = min(last, best_start + coarse_step - 1)
        for t in range(lo, hi + 1):
            if t == best_start:
                continue
            score = self.alignment_score(stream, t)
            searched += 1
            if score > best_score:
                best_start, best_score = t, score

        return PacketSync(
            start_sample=best_start, score=best_score, searched=searched
        )


def estimate_cfo_bins(
    params: ChirpParams,
    up_symbol: np.ndarray,
    down_symbol: np.ndarray,
    zero_pad_factor: int = 10,
) -> float:
    """Estimate CFO (in FFT bins) from one up/down preamble symbol pair.

    The upchirp peak sits at ``k + d + f`` and the downchirp peak at
    ``-(k + d) + f`` (mod N), so the wrapped half-sum of the two measured
    peaks isolates the frequency term ``f`` independent of the unknown
    shift ``k`` and timing error ``d``.
    """
    demod = Demodulator(params, zero_pad_factor=zero_pad_factor)
    n = params.n_shifts
    bin_up = demod.dechirp(up_symbol).peak_bin()
    # Downchirps are de-spread by the upchirp (the conjugate pairing).
    despread = np.asarray(down_symbol, dtype=complex) * upchirp(params)
    spectrum = np.abs(np.fft.fft(despread, n=n * zero_pad_factor))
    bin_down = int(np.argmax(spectrum)) / zero_pad_factor
    total = (bin_up + bin_down) % n
    # Wrap the half-sum into (-N/4, N/4]: CFO is small by construction.
    if total > n / 2:
        total -= n
    return total / 2.0
