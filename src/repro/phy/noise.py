"""Shared noise-floor estimation for the single-FFT receiver.

Historically the library had two divergent noise estimators: the
per-symbol path (:meth:`repro.phy.demodulation.Demodulator.noise_floor`)
took the median bin power after excluding neighbourhoods of known peaks,
while the vectorised round decoder hard-coded a low quantile of the whole
spectrum. Both are views of the same question — "what does an unoccupied
bin look like?" — so the answer lives here once:

* median of the candidate (signal-free) bin powers when any survive the
  exclusions, because the median is insensitive to stray peaks;
* a low quantile of a fallback set when the exclusions cover everything
  (e.g. 256 devices at SKIP = 2 occupy every natural bin), which tracks
  the combined noise + side-lobe floor.

The helper is batch-aware: a ``(n_rounds, n_probes)`` power matrix yields
one floor per round, which is what the batched decode engine needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DecodingError

NOISE_FALLBACK_QUANTILE = 0.25
"""Quantile of the fallback powers used under full occupancy."""


def estimate_noise_floor(
    candidate_powers: np.ndarray,
    fallback_powers: Optional[np.ndarray] = None,
    fallback_quantile: float = NOISE_FALLBACK_QUANTILE,
) -> np.ndarray:
    """Noise floor from signal-free candidate bins, with occupancy fallback.

    Parameters
    ----------
    candidate_powers:
        Powers of bins believed to be signal-free, shape ``(..., n_free)``.
        ``n_free`` may be zero (full occupancy).
    fallback_powers:
        Powers used when no candidates survive, shape ``(..., n_probes)``.
        Required if ``candidate_powers`` is empty along its last axis.
    fallback_quantile:
        Quantile of the fallback powers standing in for the floor.

    Returns
    -------
    The floor per leading index (0-d array for 1-D inputs).
    """
    candidate_powers = np.asarray(candidate_powers, dtype=float)
    if candidate_powers.shape[-1] > 0:
        return np.median(candidate_powers, axis=-1)
    if fallback_powers is None:
        raise DecodingError(
            "no signal-free bins and no fallback powers provided"
        )
    fallback_powers = np.asarray(fallback_powers, dtype=float)
    if fallback_powers.shape[-1] == 0:
        raise DecodingError("fallback powers must not be empty")
    return np.quantile(fallback_powers, fallback_quantile, axis=-1)


def exclusion_mask(
    n_bins: int,
    zero_pad_factor: int,
    exclude_shifts: Sequence[float],
    guard_bins: float = 1.0,
) -> np.ndarray:
    """Boolean mask over the interpolated grid: True = excluded.

    A bin is excluded when it lies within ``guard_bins`` natural bins of
    any excluded cyclic shift (cyclically). This is the neighbourhood the
    per-symbol estimator has always carved out (``+/- zp`` interpolated
    bins for the default guard of one natural bin).
    """
    mask = np.zeros(n_bins, dtype=bool)
    zp = int(zero_pad_factor)
    guard = max(1, int(round(guard_bins * zp)))
    offsets = np.arange(-guard, guard + 1)
    for shift in exclude_shifts:
        centre = int(round(float(shift) * zp))
        mask[(centre + offsets) % n_bins] = True
    return mask


def spectrum_noise_floor(
    power: np.ndarray,
    zero_pad_factor: int,
    exclude_shifts: Optional[Sequence[float]] = None,
    fallback_quantile: float = NOISE_FALLBACK_QUANTILE,
) -> float:
    """Floor of one full interpolated power spectrum.

    The per-symbol form: median over all interpolated bins outside the
    excluded neighbourhoods; quantile of the whole spectrum when the
    exclusions leave nothing.
    """
    power = np.asarray(power, dtype=float)
    if exclude_shifts:
        mask = exclusion_mask(power.size, zero_pad_factor, exclude_shifts)
        candidates = power[~mask]
    else:
        candidates = power
    return float(
        estimate_noise_floor(
            candidates, fallback_powers=power,
            fallback_quantile=fallback_quantile,
        )
    )
