"""Shared noise-floor estimation and versioned engine-noise streams.

Historically the library had two divergent noise estimators: the
per-symbol path (:meth:`repro.phy.demodulation.Demodulator.noise_floor`)
took the median bin power after excluding neighbourhoods of known peaks,
while the vectorised round decoder hard-coded a low quantile of the whole
spectrum. Both are views of the same question — "what does an unoccupied
bin look like?" — so the answer lives here once:

* median of the candidate (signal-free) bin powers when any survive the
  exclusions, because the median is insensitive to stray peaks;
* a low quantile of a fallback set when the exclusions cover everything
  (e.g. 256 devices at SKIP = 2 occupy every natural bin), which tracks
  the combined noise + side-lobe floor.

The helper is batch-aware: a ``(n_rounds, n_probes)`` power matrix yields
one floor per round, which is what the batched decode engine needs.

The second half of the module is the *engine-noise* side of the same
story: when the batched decode engine injects channel AWGN directly at
the readout bins, the draws come from a :class:`NoiseStream` — a thin,
versioned wrapper over one ``numpy`` generator. The ``version`` field
names the exact draw layout, so a recorded decode
(:class:`repro.core.receiver.RoundsDecode`) is reproducible from its
``(seed, noise_mode, noise_version)`` triple alone:

* ``version 1`` (``noise_mode="full"``) — correlated window noise for
  every readout bin of every device of every symbol, then the probe
  block: the stream the engine has drawn since the batched decode was
  introduced, pinned bit-for-bit by the regression goldens;
* ``version 2`` (``noise_mode="payload"``) — the located-bin payload
  stream: full windows for the preamble symbols only (the peak search
  needs them), the probe block, then per-device draws at just the
  located ``±1`` payload bins via the 3×3 Toeplitz covariance factor
  (:func:`repro.phy.sparse_readout.located_bin_noise_covariance`).
  ~3× fewer window draws per round; the decision statistics are exactly
  those of the full stream because the payload decisions never read the
  bins the stream stops drawing.

Doctest — the shared floor rule and the stream/version mapping:

>>> import numpy as np
>>> from repro.phy.noise import NoiseStream, estimate_noise_floor
>>> float(estimate_noise_floor(np.array([1.0, 2.0, 9.0])))
2.0
>>> stream = NoiseStream(np.random.default_rng(0))
>>> (stream.mode, stream.version)
('payload', 2)
>>> NoiseStream(np.random.default_rng(0), mode="full").version
1
>>> z = stream.standard_complex((2, 3))
>>> (z.shape, z.dtype.kind, stream.draws)
((2, 3), 'c', 6)
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import DecodingError
from repro.utils.rng import RngLike, make_rng, standard_complex_normal

NOISE_FALLBACK_QUANTILE = 0.25
"""Quantile of the fallback powers used under full occupancy."""

#: Engine-noise draw layouts, mode -> stream version. Versions are
#: append-only: a new layout gets a new number, existing numbers keep
#: reproducing their historical draws bit for bit.
NOISE_STREAM_VERSIONS = {"full": 1, "payload": 2}

#: Accepted ``noise_mode`` values, in version order.
NOISE_MODES = tuple(
    sorted(NOISE_STREAM_VERSIONS, key=NOISE_STREAM_VERSIONS.get)
)

#: The newest stream version (the default ``"payload"`` layout).
CURRENT_NOISE_VERSION = max(NOISE_STREAM_VERSIONS.values())


class NoiseStream:
    """Versioned source of the engine's readout-domain noise draws.

    Wraps one generator and stamps every decode with an explicit
    ``(mode, version)`` pair, so two runs of the engine agree bit for
    bit exactly when their seeds *and* stream versions agree — the
    versioning story that lets the draw layout evolve (fewer draws,
    different ordering) without silently invalidating recorded runs.

    Parameters
    ----------
    rng:
        Generator (or seed) the draws consume. Passing an existing
        generator shares its state, exactly like the pre-stream code
        paths did.
    mode:
        Draw layout name: ``"full"`` (version 1) or ``"payload"``
        (version 2). See the module docstring for what each draws.
    version:
        Optional explicit version; must match ``mode``'s version. Accepting
        it redundantly lets callers that persist ``(mode, version)``
        pairs fail loudly on a mismatch instead of silently decoding
        with the wrong layout.
    """

    def __init__(
        self,
        rng: RngLike,
        mode: str = "payload",
        version: Optional[int] = None,
    ) -> None:
        if mode not in NOISE_STREAM_VERSIONS:
            raise DecodingError(
                f"noise mode must be one of {NOISE_MODES}, got {mode!r}"
            )
        expected = NOISE_STREAM_VERSIONS[mode]
        # Plain equality, not int() coercion: a fractional or
        # non-numeric persisted version must fail loudly, as the
        # contract promises (2.7 or "two" are mismatches, not 2).
        if version is not None and (
            isinstance(version, bool) or version != expected
        ):
            raise DecodingError(
                f"noise mode {mode!r} is stream version {expected}, "
                f"got version {version!r}"
            )
        self._rng = make_rng(rng)
        self._mode = mode
        self._version = expected
        self._draws = 0

    @property
    def mode(self) -> str:
        """Draw-layout name (``"full"`` or ``"payload"``)."""
        return self._mode

    @property
    def version(self) -> int:
        """Stream version stamped onto decodes drawn from this stream."""
        return self._version

    @property
    def draws(self) -> int:
        """Complex CN(0,1) elements drawn so far (cost introspection)."""
        return self._draws

    def standard_complex(self, shape, dtype=np.float64) -> np.ndarray:
        """iid circular CN(0,1) draws, consuming the wrapped generator.

        Identical consumption to
        :func:`repro.utils.rng.standard_complex_normal` on the same
        generator — which is what keeps version-1 streams bit-identical
        to the pre-stream engine.
        """
        shape = tuple(shape)
        self._draws += math.prod(shape)
        return standard_complex_normal(self._rng, shape, dtype)


def covariance_factor(covariance: np.ndarray) -> np.ndarray:
    """Factor ``L`` with ``L @ L^H == covariance``, rank-deficiency-safe.

    ``L @ zeta`` (``zeta`` iid CN(0,1)) then has exactly the joint
    distribution of zero-mean circular noise with the given covariance.
    Factored through the eigendecomposition rather than a Cholesky:
    readout bins spaced by sub-bin distances are almost perfectly
    correlated, so readout-noise covariances are numerically
    rank-deficient and a plain Cholesky fails on round-off. Negative
    round-off eigenvalues are clipped to zero.

    >>> import numpy as np
    >>> cov = np.array([[2.0, 1.0], [1.0, 2.0]])
    >>> factor = covariance_factor(cov)
    >>> bool(np.allclose(factor @ factor.conj().T, cov))
    True
    """
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    return eigenvectors * np.sqrt(np.clip(eigenvalues, 0.0, None))


def estimate_noise_floor(
    candidate_powers: np.ndarray,
    fallback_powers: Optional[np.ndarray] = None,
    fallback_quantile: float = NOISE_FALLBACK_QUANTILE,
) -> np.ndarray:
    """Noise floor from signal-free candidate bins, with occupancy fallback.

    Parameters
    ----------
    candidate_powers:
        Powers of bins believed to be signal-free, shape ``(..., n_free)``.
        ``n_free`` may be zero (full occupancy).
    fallback_powers:
        Powers used when no candidates survive, shape ``(..., n_probes)``.
        Required if ``candidate_powers`` is empty along its last axis.
    fallback_quantile:
        Quantile of the fallback powers standing in for the floor.

    Returns
    -------
    The floor per leading index (0-d array for 1-D inputs).
    """
    candidate_powers = np.asarray(candidate_powers, dtype=float)
    if candidate_powers.shape[-1] > 0:
        return np.median(candidate_powers, axis=-1)
    if fallback_powers is None:
        raise DecodingError(
            "no signal-free bins and no fallback powers provided"
        )
    fallback_powers = np.asarray(fallback_powers, dtype=float)
    if fallback_powers.shape[-1] == 0:
        raise DecodingError("fallback powers must not be empty")
    return np.quantile(fallback_powers, fallback_quantile, axis=-1)


def exclusion_mask(
    n_bins: int,
    zero_pad_factor: int,
    exclude_shifts: Sequence[float],
    guard_bins: float = 1.0,
) -> np.ndarray:
    """Boolean mask over the interpolated grid: True = excluded.

    A bin is excluded when it lies within ``guard_bins`` natural bins of
    any excluded cyclic shift (cyclically). This is the neighbourhood the
    per-symbol estimator has always carved out (``+/- zp`` interpolated
    bins for the default guard of one natural bin).
    """
    mask = np.zeros(n_bins, dtype=bool)
    zp = int(zero_pad_factor)
    guard = max(1, int(round(guard_bins * zp)))
    offsets = np.arange(-guard, guard + 1)
    for shift in exclude_shifts:
        centre = int(round(float(shift) * zp))
        mask[(centre + offsets) % n_bins] = True
    return mask


def spectrum_noise_floor(
    power: np.ndarray,
    zero_pad_factor: int,
    exclude_shifts: Optional[Sequence[float]] = None,
    fallback_quantile: float = NOISE_FALLBACK_QUANTILE,
) -> float:
    """Floor of one full interpolated power spectrum.

    The per-symbol form: median over all interpolated bins outside the
    excluded neighbourhoods; quantile of the whole spectrum when the
    exclusions leave nothing.
    """
    power = np.asarray(power, dtype=float)
    if exclude_shifts:
        mask = exclusion_mask(power.size, zero_pad_factor, exclude_shifts)
        candidates = power[~mask]
    else:
        candidates = power
    return float(
        estimate_noise_floor(
            candidates, fallback_powers=power,
            fallback_quantile=fallback_quantile,
        )
    )
