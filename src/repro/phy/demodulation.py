"""Dechirp + FFT demodulation with zero-padded sub-bin resolution.

This is the receiver-side workhorse shared by the NetScatter concurrent
decoder and the LoRa baseline: multiply the received symbol by the baseline
downchirp, zero-pad, and take a single FFT. Every concurrent transmission
lands in its own bin, so one FFT decodes all devices (the paper's central
receiver-complexity claim).

Zero-padding by a factor ``zp`` gives ``1/zp``-bin peak resolution but
convolves each peak with a sinc whose side lobes (-13.3 dB first lobe)
create the near-far problem analysed in Section 3.2.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import DecodingError
from repro.phy.chirp import ChirpParams, downchirp
from repro.phy.noise import spectrum_noise_floor


@dataclass(frozen=True)
class DechirpResult:
    """Zero-padded FFT magnitude spectrum of one dechirped symbol.

    Attributes
    ----------
    spectrum:
        Complex FFT output, length ``2^SF * zero_pad_factor``.
    params:
        The chirp parameters used.
    zero_pad_factor:
        Interpolation factor of the FFT grid.
    """

    spectrum: np.ndarray
    params: ChirpParams
    zero_pad_factor: int

    # cached_property stores into the instance __dict__ directly, which
    # sidesteps the frozen-dataclass __setattr__ guard: the spectrum is
    # immutable, so |.| and |.|^2 are computed at most once per result
    # (decode_symbols reads .power in a loop per device per symbol).
    @cached_property
    def magnitude(self) -> np.ndarray:
        """Magnitude spectrum (computed once, then cached)."""
        return np.abs(self.spectrum)

    @cached_property
    def power(self) -> np.ndarray:
        """Power spectrum (computed once, then cached)."""
        return self.spectrum.real**2 + self.spectrum.imag**2

    @property
    def n_bins(self) -> int:
        """Number of interpolated FFT bins."""
        return self.spectrum.size

    def bin_power(self, shift: float, width_bins: float = 0.5) -> float:
        """Peak power near natural (un-interpolated) bin ``shift``.

        Searches ``shift +/- width_bins`` on the interpolated grid, which
        absorbs residual fractional offsets from timing jitter, and returns
        the maximum power found. Wraps cyclically.
        """
        zp = self.zero_pad_factor
        centre = shift * zp
        half = max(1, int(round(width_bins * zp)))
        idx = (np.arange(-half, half + 1) + int(round(centre))) % self.n_bins
        return float(np.max(self.power[idx]))

    def peak_index_near(self, shift: float, width_bins: float = 0.5) -> int:
        """Interpolated-grid index of the peak near natural bin ``shift``."""
        zp = self.zero_pad_factor
        centre = shift * zp
        half = max(1, int(round(width_bins * zp)))
        idx = (np.arange(-half, half + 1) + int(round(centre))) % self.n_bins
        return int(idx[int(np.argmax(self.power[idx]))])

    def power_at_index(self, index: int, guard: int = 1) -> float:
        """Power at an interpolated-grid index, max over ``+/- guard``."""
        idx = (np.arange(-guard, guard + 1) + int(index)) % self.n_bins
        return float(np.max(self.power[idx]))

    def peak_bin(self) -> float:
        """Location of the global peak, in natural-bin units (fractional)."""
        peak_index = int(np.argmax(self.magnitude))
        return peak_index / self.zero_pad_factor

    def peak_bins(self, count: int) -> np.ndarray:
        """Locations of the ``count`` largest peaks in natural-bin units."""
        if count < 1:
            raise DecodingError("count must be >= 1")
        order = np.argsort(self.magnitude)[::-1][:count]
        return np.sort(order / self.zero_pad_factor)


class Demodulator:
    """Dechirps CSS symbols and exposes the single-FFT spectrum.

    Parameters
    ----------
    params:
        Chirp bandwidth and spreading factor.
    zero_pad_factor:
        FFT interpolation factor; the paper (following Choir) uses 10 to
        resolve one-tenth of an FFT bin.
    """

    def __init__(self, params: ChirpParams, zero_pad_factor: int = 10) -> None:
        if zero_pad_factor < 1:
            raise DecodingError("zero_pad_factor must be >= 1")
        self._params = params
        self._zero_pad_factor = int(zero_pad_factor)
        self._downchirp = downchirp(params)

    @property
    def params(self) -> ChirpParams:
        return self._params

    @property
    def zero_pad_factor(self) -> int:
        return self._zero_pad_factor

    def dechirp(self, symbol: np.ndarray) -> DechirpResult:
        """De-spread one received symbol and return its FFT spectrum.

        ``symbol`` must hold exactly ``2^SF`` critical-rate samples.
        """
        symbol = np.asarray(symbol, dtype=complex)
        n = self._params.n_samples
        if symbol.size != n:
            raise DecodingError(
                f"expected {n} samples per symbol, got {symbol.size}"
            )
        despread = symbol * self._downchirp
        padded_len = n * self._zero_pad_factor
        spectrum = np.fft.fft(despread, n=padded_len)
        return DechirpResult(
            spectrum=spectrum,
            params=self._params,
            zero_pad_factor=self._zero_pad_factor,
        )

    def dechirp_frame(self, frame: np.ndarray) -> List[DechirpResult]:
        """De-spread a frame of back-to-back symbols.

        The frame length must be a whole number of symbols.
        """
        frame = np.asarray(frame, dtype=complex)
        n = self._params.n_samples
        if frame.size % n != 0:
            raise DecodingError(
                f"frame length {frame.size} is not a multiple of the "
                f"symbol length {n}"
            )
        return [
            self.dechirp(frame[i : i + n]) for i in range(0, frame.size, n)
        ]

    def classic_decode(self, symbol: np.ndarray) -> int:
        """Classic LoRa decision: the integer shift of the strongest peak.

        Used by the single-user baseline; NetScatter instead inspects all
        assigned bins (see :class:`repro.core.receiver.NetScatterReceiver`).
        """
        result = self.dechirp(symbol)
        return int(round(result.peak_bin())) % self._params.n_shifts

    def noise_floor(self, result: DechirpResult,
                    exclude_bins: Optional[Sequence[float]] = None) -> float:
        """Median bin power, excluding neighbourhoods of known peaks.

        A robust noise estimate for presence thresholds, delegated to the
        shared estimator in :mod:`repro.phy.noise` (the same rule the
        batched round decoder applies to its probe bins). Under full
        occupancy the estimator falls back to a low quantile of the whole
        spectrum, which tracks the noise + side-lobe floor.
        """
        return spectrum_noise_floor(
            result.power, self._zero_pad_factor, exclude_shifts=exclude_bins
        )
