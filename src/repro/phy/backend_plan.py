"""Occupancy-adaptive spectral backend planner.

The batched decode engine has three interchangeable spectral backends —
all producing bit-identical decisions on tone-sum inputs — whose costs
scale differently with the occupancy ``D`` (concurrent device tones) of
a round batch of ``R`` rounds x ``S`` symbols at chirp length ``N``
(= ``2^SF``), zero-pad factor ``zp`` and readout size ``K`` (window bins
``K_w ~ D * W`` plus ``K_p`` noise probes):

``analytic``
    Closed-form Dirichlet-kernel composition
    (:func:`repro.core.dcss.compose_readout`): ~6 bandwidth-bound passes
    over the ``(D, K)`` kernel grid per round plus two *real* GEMMs of
    ``R*S*D*K_w`` multiply-adds. No waveform, no operator. Scales as
    ``S*W*D^2`` — unbeatable at small ``D``, quadratic in occupancy.

``sparse``
    Time-domain tone synthesis (one complex GEMM of ``R*S*D*N``) plus
    the precomputed sparse-readout operator (complex GEMM of
    ``R*S*N*K_w``). Scales as ``S*N*D*W`` — linear in ``D`` but carries
    the full chirp length ``N`` in every term.

``fft``
    The same tone synthesis followed by one zero-padded FFT per symbol:
    ``R*S*(N*zp)*log2(N*zp)`` butterfly work, independent of ``D``
    beyond the compose. The cheapest readout once the windows cover an
    appreciable fraction of the padded grid — exactly the paper's most
    stressed operating points (``D = N/2`` at 256 devices, SF 9).

Cost model
----------
Each backend's wall-clock is predicted as a weighted sum of six
primitive throughputs measured once per host by :func:`calibrate` (a
~0.1 s micro-benchmark whose result is persisted, so the crossover
points are *pinned by measurement* instead of hard-coded flop ratios —
BLAS GEMM, ``numpy.fft`` and transcendental throughput differ by large,
machine-dependent constants):

* ``real_mac_s`` / ``cplx_mac_s`` — seconds per multiply-add of a
  float64 / complex128 GEMM,
* ``fft_elem_s`` — seconds per ``element * log2(n)`` of a batched
  complex FFT,
* ``exp_elem_s`` — seconds per element of a complex-exponential
  evaluation (tone synthesis),
* ``ew_pass_s`` — seconds per element of one bandwidth-bound array
  pass (the analytic kernel's trigonometric grid assembly),
* ``gauss_elem_s`` — seconds per complex CN(0,1) draw (the engine's
  readout-domain noise streams).

With the dev-box coefficients the model reproduces the measured
ordering: ``analytic`` below ~100 devices at the deployment point
(SF 9, ``zp`` 10, 46-symbol rounds), ``fft`` above, with ``sparse``
dominated on tone-sum inputs (its niche is tensor inputs at small
``D``, where ``analytic`` is not available). See the README's
four-mode table for the measured crossover and
``docs/PERFORMANCE.md`` for the full decision guide.

Workloads that inject engine noise carry their ``noise_mode``
(``"full"`` draws every readout bin each symbol, ``"payload"`` only the
preamble windows plus the located ``±1`` payload bins — see
:mod:`repro.phy.noise`). The noise term is *backend-common* — every
spectral backend draws the same stream — so by construction it never
flips the backend ordering; it is modelled so predicted totals track
wall-clock, and so cost introspection (``costs()``) quantifies what a
``noise_mode`` switch is worth at a given operating point.

Consumers go through :func:`host_planner` (cached, calibrating at most
once per process) or construct :class:`BackendPlanner` with explicit
coefficients for deterministic tests. The persisted calibration lives
in the system temp directory by default (override with the
``REPRO_BACKEND_CALIBRATION`` environment variable; set it to the empty
string to disable persistence). The persistence schema is versioned;
files written by older schemas are ignored and transparently
re-calibrated.

Doctest — the crossover ordering and the noise-mode accounting with the
conservative built-in coefficients:

>>> from repro.phy.backend_plan import (
...     BackendPlanner, DEFAULT_COEFFICIENTS, ReadoutWorkload)
>>> planner = BackendPlanner(DEFAULT_COEFFICIENTS)
>>> def point(d, noise_mode=None):
...     return ReadoutWorkload(
...         n_rounds=3, n_symbols=46, n_devices=d, n_samples=512,
...         zero_pad_factor=10, window_bins=13 * d, probe_bins=512,
...         window_width=13, noise_mode=noise_mode)
>>> planner.select(point(8))
'analytic'
>>> planner.select(point(256))
'fft'
>>> payload = planner.costs(point(64, noise_mode="payload"))
>>> full = planner.costs(point(64, noise_mode="full"))
>>> bool(full["analytic"] > payload["analytic"])  # fewer draws
True
>>> gap_full = full["fft"] - full["analytic"]       # backend-common term:
>>> gap_payload = payload["fft"] - payload["analytic"]  # same gap
>>> bool(abs(gap_full - gap_payload) < 1e-12)
True
"""

from __future__ import annotations

import json
import logging
import os
import platform
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError

logger = logging.getLogger(__name__)

#: Backend names, in the order the planner reports their costs.
BACKENDS = ("analytic", "sparse", "fft")

#: Environment variable overriding the calibration file location
#: ("" disables persistence entirely).
CALIBRATION_ENV = "REPRO_BACKEND_CALIBRATION"

#: Persistence schema of the calibration file. v2 added the Gaussian
#: draw primitive (``gauss_elem_s``); v1 files are ignored and
#: re-calibrated rather than silently carrying a guessed coefficient.
_SCHEMA = "repro-backend-plan-v2"

@dataclass(frozen=True)
class ReadoutWorkload:
    """Shape of one batched decode, everything the cost model reads.

    ``n_devices`` counts the *composed tones* per round (the columns of
    the keying tensor); ``window_bins`` / ``probe_bins`` are the
    receiver's readout sizes (``K_w`` is already ``D_rx * W``).
    ``tone_input`` marks whether composition inputs are available — when
    False (a pre-composed symbol tensor) the ``analytic`` backend is
    not applicable and the synthesis cost of the other two is sunk.

    ``noise_mode`` is ``None`` when the decode injects no engine noise;
    otherwise ``"full"`` or ``"payload"`` selects which versioned
    stream's draw volume to account (backend-common — see the module
    docstring). Noise accounting additionally needs ``window_width``
    (``W``, the interpolated bins per device window, so the correlation
    matmuls and the per-device located-bin draws can be sized) and
    ``n_preamble`` (the symbol rows the payload stream still draws in
    full).
    """

    n_rounds: int
    n_symbols: int
    n_devices: int
    n_samples: int
    zero_pad_factor: int
    window_bins: int
    probe_bins: int
    tone_input: bool = True
    window_width: int = 0
    n_preamble: int = 6
    noise_mode: Optional[str] = None


@dataclass(frozen=True)
class CalibrationCoefficients:
    """Measured per-element costs (seconds) of the six primitives.

    ``gauss_elem_s`` defaults so five-coefficient constructions (and
    older persisted payloads re-validated through the constructor) stay
    usable; :func:`calibrate` always measures it.
    """

    real_mac_s: float
    cplx_mac_s: float
    fft_elem_s: float
    exp_elem_s: float
    ew_pass_s: float
    gauss_elem_s: float = 6.0e-9

    def __post_init__(self) -> None:
        for name, value in asdict(self).items():
            if not (value > 0.0 and np.isfinite(value)):
                raise ConfigurationError(
                    f"calibration coefficient {name} must be positive "
                    f"and finite, got {value!r}"
                )


#: Conservative fallback (a ~1 Gflop/s core with numpy's typical FFT /
#: transcendental constants). Only used when measuring is impossible;
#: :func:`host_planner` always prefers a real calibration.
DEFAULT_COEFFICIENTS = CalibrationCoefficients(
    real_mac_s=6.0e-10,
    cplx_mac_s=2.0e-9,
    fft_elem_s=1.5e-9,
    exp_elem_s=1.5e-8,
    ew_pass_s=1.2e-9,
    gauss_elem_s=6.0e-9,
)


def _best_time(fn, repeats: int = 3) -> float:
    """Minimum wall-clock of ``fn`` over ``repeats`` runs (post-warmup)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate(rng=None) -> CalibrationCoefficients:
    """One-shot micro-calibration of the five primitive throughputs.

    Deliberately small (~0.1 s total): each primitive is timed on a
    workload shaped like the real decode kernels (GEMMs with a short
    ``m`` and long ``k``/``n``, a zero-padded batch FFT, a tone grid)
    and the per-element cost is the best of three runs.
    """
    generator = np.random.default_rng(0 if rng is None else rng)
    m, k, n = 48, 256, 2048
    a = generator.standard_normal((m, k))
    b = generator.standard_normal((k, n))
    real_mac_s = _best_time(lambda: a @ b) / (m * k * n)

    ac = a + 1j * generator.standard_normal((m, k))
    bc = b + 1j * generator.standard_normal((k, n))
    cplx_mac_s = _best_time(lambda: ac @ bc) / (m * k * n)

    n_fft = 5120  # the deployment's padded grid (512 * 10)
    x = (
        generator.standard_normal((m, 512))
        + 1j * generator.standard_normal((m, 512))
    )
    fft_elem_s = _best_time(lambda: np.fft.fft(x, n=n_fft, axis=-1)) / (
        m * n_fft * np.log2(n_fft)
    )

    theta = generator.standard_normal(1 << 17)
    exp_elem_s = _best_time(lambda: np.exp(1j * theta)) / theta.size

    u = generator.standard_normal(1 << 20)
    v = generator.standard_normal(1 << 20)
    ew_pass_s = _best_time(lambda: u * v) / u.size

    from repro.utils.rng import standard_complex_normal

    n_draws = 1 << 16
    gauss_elem_s = _best_time(
        lambda: standard_complex_normal(generator, (n_draws,))
    ) / n_draws

    return CalibrationCoefficients(
        real_mac_s=real_mac_s,
        cplx_mac_s=cplx_mac_s,
        fft_elem_s=fft_elem_s,
        exp_elem_s=exp_elem_s,
        ew_pass_s=ew_pass_s,
        gauss_elem_s=gauss_elem_s,
    )


def _default_calibration_path() -> Optional[Path]:
    """Per-host calibration file; ``None`` when persistence is disabled."""
    override = os.environ.get(CALIBRATION_ENV)
    if override is not None:
        return Path(override) if override else None
    user = os.environ.get("USER") or os.environ.get("USERNAME") or "shared"
    return Path(tempfile.gettempdir()) / f"repro-backend-plan-{user}.json"


def _load_coefficients(path: Path) -> Optional[CalibrationCoefficients]:
    """Previously persisted coefficients, or ``None`` if unusable.

    A corrupt or truncated calibration file (torn write, disk fault)
    must never abort planning: it is logged and discarded so
    :func:`host_planner` re-calibrates and rewrites a valid file.
    """
    try:
        text = path.read_text()
    except OSError:
        return None  # missing/unreadable: plain cache miss, no noise
    try:
        data = json.loads(text)
    except ValueError as error:
        logger.warning(
            "backend calibration file %s is corrupt (%s); "
            "discarding it and re-calibrating",
            path,
            error,
        )
        return None
    if not isinstance(data, dict) or data.get("schema") != _SCHEMA:
        logger.info(
            "backend calibration file %s carries schema %r "
            "(expected %r); re-calibrating",
            path,
            data.get("schema") if isinstance(data, dict) else type(data),
            _SCHEMA,
        )
        return None
    try:
        return CalibrationCoefficients(**data["coefficients"])
    except (TypeError, KeyError, ConfigurationError) as error:
        logger.warning(
            "backend calibration file %s has unusable coefficients "
            "(%s); re-calibrating",
            path,
            error,
        )
        return None


def _persist_coefficients(
    path: Path, coefficients: CalibrationCoefficients
) -> None:
    """Best-effort write of the calibration; failures are non-fatal."""
    payload = {
        "schema": _SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "coefficients": asdict(coefficients),
    }
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


class BackendPlanner:
    """Predicts per-backend decode cost and picks the cheapest.

    Stateless apart from its coefficients: construct with explicit
    :class:`CalibrationCoefficients` for deterministic behaviour (tests
    pin crossovers this way), or use :func:`host_planner` for the
    per-host calibrated instance.
    """

    def __init__(self, coefficients: CalibrationCoefficients) -> None:
        self._coefficients = coefficients

    @property
    def coefficients(self) -> CalibrationCoefficients:
        return self._coefficients

    def costs(self, workload: ReadoutWorkload) -> Dict[str, float]:
        """Predicted seconds per backend for ``workload``.

        Only applicable backends appear: tensor inputs
        (``tone_input=False``) exclude ``analytic`` and carry no
        synthesis term for the other two. When the workload injects
        engine noise (``noise_mode``), every backend additionally
        carries the same stream-draw term — backend-common, so it never
        changes :meth:`select`'s answer, but it keeps the totals honest
        and exposes the payload-vs-full draw saving to cost readers.
        """
        c = self._coefficients
        w = workload
        r, s, d = w.n_rounds, w.n_symbols, w.n_devices
        n, kw, kp = w.n_samples, w.window_bins, w.probe_bins
        n_grid = n * w.zero_pad_factor
        if min(r, s, n, kw) < 1 or w.zero_pad_factor < 1:
            raise ConfigurationError("workload dimensions must be >= 1")
        noise = self._noise_cost(w)

        out: Dict[str, float] = {}
        compose = 0.0
        if w.tone_input:
            if d < 1:
                raise ConfigurationError(
                    "tone-input workloads need n_devices >= 1"
                )
            # Kernel grids are ~6 bandwidth-bound passes (sin/cos outer
            # products, singular-limit mask, divides); the GEMMs run on
            # the real ratio matrix twice (real + imaginary weights).
            out["analytic"] = c.real_mac_s * (
                2.0 * r * s * d * kw + 2.0 * r * d * kp
            ) + c.ew_pass_s * 6.0 * r * d * (kw + kp)
            # Tone synthesis shared by the waveform backends: the
            # factored form of compose_rounds takes O(sqrt(N))
            # transcendentals per tone, one complex outer-product pass
            # over the (R, D, N) grid (~4 bandwidth-bound passes), and
            # the weights GEMM.
            compose = (
                c.exp_elem_s * r * d * 2.0 * np.sqrt(n)
                + c.ew_pass_s * 4.0 * r * d * n
                + c.cplx_mac_s * r * s * d * n
            )
        out["sparse"] = compose + c.cplx_mac_s * (
            r * s * n * kw + r * n * kp
        )
        out["fft"] = compose + c.fft_elem_s * (
            r * s * n_grid * np.log2(n_grid)
        )
        if noise:
            out = {name: cost + noise for name, cost in out.items()}
        return out

    def _noise_cost(self, w: ReadoutWorkload) -> float:
        """Predicted seconds of the engine-noise draws, or 0 when none.

        Two terms per stream block: the CN(0,1) generation
        (``gauss_elem_s`` per complex element) and the correlation
        matmul mixing each window block through its covariance factor
        (``cplx_mac_s`` per multiply-add — ``W`` per element for full
        windows, 3 per element for the located payload bins).
        """
        if w.noise_mode is None:
            return 0.0
        # Lazy import: the live stream registry is the single source of
        # truth for valid modes, and planner-only consumers that never
        # account noise never pay for it.
        from repro.phy.noise import NOISE_MODES

        if w.noise_mode not in NOISE_MODES:
            raise ConfigurationError(
                f"noise_mode must be None or one of {NOISE_MODES}, "
                f"got {w.noise_mode!r}"
            )
        width = w.window_width
        if width < 1:
            raise ConfigurationError(
                "noise-accounted workloads need window_width >= 1"
            )
        r, s = w.n_rounds, w.n_symbols
        kw, kp = w.window_bins, w.probe_bins
        if w.noise_mode == "full":
            draws = r * s * kw + r * kp
            correlate = r * s * kw * width
        else:
            d_rx = kw / width
            s_pre = min(max(w.n_preamble, 0), s)
            s_pay = s - s_pre
            draws = r * (s_pre * kw + s_pay * 3.0 * d_rx) + r * kp
            correlate = r * (s_pre * kw * width + s_pay * d_rx * 9.0)
        c = self._coefficients
        return c.gauss_elem_s * draws + c.cplx_mac_s * correlate

    def select(self, workload: ReadoutWorkload) -> str:
        """Name of the predicted-cheapest applicable backend."""
        costs = self.costs(workload)
        return min(costs, key=costs.get)


_HOST_PLANNER: Optional[BackendPlanner] = None


def host_planner(force_recalibrate: bool = False) -> BackendPlanner:
    """The per-host calibrated planner, built at most once per process.

    Loads the persisted calibration when present and valid; otherwise
    runs :func:`calibrate` and persists the result so subsequent
    processes (e.g. sweep worker pools) skip the micro-benchmark.
    """
    global _HOST_PLANNER
    if _HOST_PLANNER is not None and not force_recalibrate:
        return _HOST_PLANNER
    path = _default_calibration_path()
    coefficients = None
    if path is not None and not force_recalibrate:
        coefficients = _load_coefficients(path)
    if coefficients is None:
        try:
            coefficients = calibrate()
        except Exception:  # pragma: no cover - measurement failure
            coefficients = DEFAULT_COEFFICIENTS
        if path is not None:
            _persist_coefficients(path, coefficients)
    _HOST_PLANNER = BackendPlanner(coefficients)
    return _HOST_PLANNER
