"""Link-layer packet structure (Section 3.3.1).

A NetScatter uplink packet is: six upchirp preamble symbols, two downchirp
preamble symbols, then the OOK payload and checksum. All symbols of one
device carry the same assigned cyclic shift. This module defines the
structure (symbol counts, air times) and a payload container with CRC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.constants import (
    PAYLOAD_CRC_BITS,
    PREAMBLE_DOWNCHIRPS,
    PREAMBLE_UPCHIRPS,
)
from repro.errors import ProtocolError
from repro.phy.chirp import ChirpParams
from repro.utils.bits import append_crc8, check_crc8


@dataclass(frozen=True)
class PacketStructure:
    """Symbol-count layout of a NetScatter uplink packet.

    The defaults reproduce the deployment settings used in Figs. 18-19:
    an 8-symbol preamble and a 40-bit payload+CRC field.
    """

    n_preamble_upchirps: int = PREAMBLE_UPCHIRPS
    n_preamble_downchirps: int = PREAMBLE_DOWNCHIRPS
    payload_bits: int = PAYLOAD_CRC_BITS

    def __post_init__(self) -> None:
        if self.n_preamble_upchirps < 1:
            raise ProtocolError("need at least one preamble upchirp")
        if self.n_preamble_downchirps < 1:
            raise ProtocolError("need at least one preamble downchirp")
        if self.payload_bits < 0:
            raise ProtocolError("payload_bits must be non-negative")

    @property
    def n_preamble_symbols(self) -> int:
        return self.n_preamble_upchirps + self.n_preamble_downchirps

    @property
    def n_payload_symbols(self) -> int:
        """OOK payload symbols; one bit per symbol for every device."""
        return self.payload_bits

    @property
    def n_symbols(self) -> int:
        return self.n_preamble_symbols + self.n_payload_symbols

    def airtime_s(self, params: ChirpParams) -> float:
        """Total on-air duration of the packet."""
        return self.n_symbols * params.symbol_duration_s

    def preamble_airtime_s(self, params: ChirpParams) -> float:
        """On-air duration of the preamble alone (the shared overhead)."""
        return self.n_preamble_symbols * params.symbol_duration_s

    def payload_airtime_s(self, params: ChirpParams) -> float:
        """On-air duration of the payload+CRC portion."""
        return self.n_payload_symbols * params.symbol_duration_s


@dataclass
class BackscatterPacket:
    """A device's uplink payload with CRC-8 protection.

    ``data_bits`` is the application payload; ``frame_bits`` appends the
    checksum. The deployment's 40-bit payload+CRC field maps to 32 data
    bits + 8 CRC bits.
    """

    device_id: int
    data_bits: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ProtocolError("device_id must be non-negative")
        for bit in self.data_bits:
            if bit not in (0, 1):
                raise ProtocolError(f"payload bits must be 0/1, got {bit!r}")

    @property
    def frame_bits(self) -> List[int]:
        """Payload bits with the CRC-8 appended."""
        return append_crc8(self.data_bits)

    @property
    def n_frame_bits(self) -> int:
        return len(self.data_bits) + 8

    @staticmethod
    def verify(frame_bits: Sequence[int]) -> bool:
        """Check the CRC of a received frame."""
        return check_crc8(list(frame_bits))

    @staticmethod
    def extract_data(frame_bits: Sequence[int]) -> List[int]:
        """Strip the CRC from a verified frame, raising on CRC failure."""
        bits = list(frame_bits)
        if not check_crc8(bits):
            raise ProtocolError("CRC check failed")
        return bits[:-8]
