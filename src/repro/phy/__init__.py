"""Chirp spread spectrum (CSS) physical layer substrate.

This package implements the CSS machinery NetScatter builds on: chirp
symbol generation with cyclic shifts, classic LoRa-style CSS modulation
(the baseline), dechirp + FFT demodulation with zero-padding, the ON-OFF
keyed per-device transmitter, the link-layer packet structure, and
packet-start synchronisation from the up/down-chirp preamble.
"""

from repro.phy.chirp import ChirpParams, upchirp, downchirp, cyclic_shifted_upchirp
from repro.phy.demodulation import Demodulator, DechirpResult
from repro.phy.modulation import CssModulator, CssDemodulator
from repro.phy.noise import estimate_noise_floor, spectrum_noise_floor
from repro.phy.onoff import OnOffKeyedTransmitter
from repro.phy.packet import BackscatterPacket, PacketStructure
from repro.phy.sparse_readout import (
    SparseReadout,
    dirichlet_kernel,
    full_fft_powers,
)

__all__ = [
    "ChirpParams",
    "upchirp",
    "downchirp",
    "cyclic_shifted_upchirp",
    "Demodulator",
    "DechirpResult",
    "CssModulator",
    "CssDemodulator",
    "estimate_noise_floor",
    "spectrum_noise_floor",
    "OnOffKeyedTransmitter",
    "BackscatterPacket",
    "PacketStructure",
    "SparseReadout",
    "dirichlet_kernel",
    "full_fft_powers",
]
