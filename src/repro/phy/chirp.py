"""Chirp symbol generation for CSS modulation.

A CSS symbol at spreading factor ``SF`` and bandwidth ``BW`` spans
``N = 2^SF`` samples when sampled at the chirp bandwidth. The baseline
upchirp sweeps frequency linearly from ``-BW/2`` to ``+BW/2`` over the
symbol; a data symbol is a *cyclic time shift* of the baseline, which after
dechirping appears as a clean FFT peak at the bin equal to the shift
(Section 2.1 of the paper).

The discrete baseline upchirp used here is ``u[n] = exp(j*pi*n^2 / N)``.
Because ``N`` is a power of two, the cyclic shift identity is exact:

    u[(n + k) mod N] = u[n] * exp(j*2*pi*k*n/N) * exp(j*pi*k^2/N)

so dechirping a shift-``k`` symbol yields a pure tone at bin ``k`` with a
constant phase, with no discontinuity at the wrap point.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChirpParams:
    """Parameters of a CSS chirp symbol.

    Attributes
    ----------
    bandwidth_hz:
        Chirp sweep bandwidth; also the critical sample rate.
    spreading_factor:
        ``SF``; the symbol carries ``2^SF`` distinguishable cyclic shifts.
    """

    bandwidth_hz: float
    spreading_factor: int

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not 1 <= int(self.spreading_factor) <= 16:
            raise ConfigurationError(
                f"spreading factor must be in [1, 16], got {self.spreading_factor}"
            )

    @property
    def n_samples(self) -> int:
        """Samples per symbol at the critical rate (= number of FFT bins)."""
        return 2 ** int(self.spreading_factor)

    @property
    def n_shifts(self) -> int:
        """Number of distinguishable cyclic shifts (= ``2^SF``)."""
        return self.n_samples

    @property
    def symbol_duration_s(self) -> float:
        """Chirp symbol duration ``2^SF / BW`` seconds."""
        return self.n_samples / self.bandwidth_hz

    @property
    def symbol_rate_hz(self) -> float:
        """Symbols per second, ``BW / 2^SF``."""
        return self.bandwidth_hz / self.n_samples

    @property
    def bin_spacing_hz(self) -> float:
        """Frequency spacing between adjacent FFT bins, ``BW / 2^SF``."""
        return self.bandwidth_hz / self.n_samples

    @property
    def lora_bitrate_bps(self) -> float:
        """Classic CSS bitrate ``SF * BW / 2^SF`` (Section 2.1)."""
        return self.spreading_factor * self.symbol_rate_hz

    @property
    def chirp_slope_hz_per_s(self) -> float:
        """Chirp slope ``BW^2 / 2^SF`` (the quantity that must differ for
        concurrent LoRa decoding, Section 2.2)."""
        return self.bandwidth_hz**2 / self.n_samples

    def sample_times(self) -> np.ndarray:
        """Time axis of one symbol at the critical sample rate."""
        return np.arange(self.n_samples) / self.bandwidth_hz


@lru_cache(maxsize=64)
def _base_upchirp_cached(n_samples: int) -> np.ndarray:
    n = np.arange(n_samples, dtype=float)
    chirp = np.exp(1j * np.pi * n**2 / n_samples)
    chirp.setflags(write=False)
    return chirp


def upchirp(params: ChirpParams) -> np.ndarray:
    """Baseline (shift-0) upchirp at the critical sample rate.

    The returned array is a cached read-only view; copy before mutating.
    """
    return _base_upchirp_cached(params.n_samples)


def downchirp(params: ChirpParams) -> np.ndarray:
    """Baseline downchirp: the complex conjugate of the upchirp.

    Multiplying a received upchirp by this de-spreads it to a single tone.
    """
    return np.conjugate(upchirp(params))


def cyclic_shifted_upchirp(params: ChirpParams, shift: int) -> np.ndarray:
    """Upchirp cyclically shifted by ``shift`` samples.

    After dechirping, the symbol produces an FFT peak at bin ``shift``.
    ``shift`` is taken modulo ``2^SF`` so callers can use signed offsets.
    """
    base = upchirp(params)
    shift = int(shift) % params.n_samples
    if shift == 0:
        return base
    return np.roll(base, -shift)


def cyclic_shifted_downchirp(params: ChirpParams, shift: int) -> np.ndarray:
    """Downchirp carrying the same cyclic shift as the device's upchirp.

    NetScatter preambles send two downchirps with the *device's own* shift
    (Section 3.3.1); the shift direction is mirrored so the up/down pair is
    symmetric around the symbol midpoint.
    """
    return np.conjugate(cyclic_shifted_upchirp(params, shift))


def oversampled_upchirp(
    params: ChirpParams, oversampling: int, shift: int = 0
) -> np.ndarray:
    """Cyclically shifted upchirp rendered at ``oversampling x BW``.

    Used by the waveform-fidelity path so that sub-sample timing offsets
    are meaningful. The analytic chirp phase is evaluated on the fine grid
    (not interpolated), so the waveform is alias-free before the channel.
    """
    if oversampling < 1:
        raise ConfigurationError("oversampling must be >= 1")
    n_total = params.n_samples * oversampling
    n = np.arange(n_total, dtype=float) / oversampling
    shifted = (n + (int(shift) % params.n_samples)) % params.n_samples
    return np.exp(1j * np.pi * shifted**2 / params.n_samples)
