"""Physical and protocol constants used throughout the NetScatter reproduction.

Values are taken from the paper text (NSDI 2019) and standard physics.
Where the paper cites a datasheet (e.g. crystal tolerance, envelope
detector sensitivity), the datasheet figure quoted in the paper is used.
"""

# --- physics ---------------------------------------------------------------

SPEED_OF_LIGHT_M_S = 3.0e8
"""Propagation speed used by the paper for time-of-flight estimates (m/s)."""

BOLTZMANN_J_PER_K = 1.380649e-23
"""Boltzmann constant (J/K)."""

ROOM_TEMPERATURE_K = 290.0
"""Standard noise reference temperature (K)."""

THERMAL_NOISE_DBM_PER_HZ = -174.0
"""Thermal noise floor density at 290 K (dBm/Hz)."""

# --- RF / carrier ----------------------------------------------------------

CARRIER_FREQ_HZ = 900e6
"""NetScatter operates in the 900 MHz ISM band."""

BACKSCATTER_BASEBAND_FREQ_HZ = 3e6
"""Subcarrier offset the tag applies to dodge AP self-interference (3 MHz)."""

RADIO_OSC_FREQ_HZ = 900e6
"""Active LoRa radios synthesise the carrier directly (used for Fig. 4)."""

CRYSTAL_TOLERANCE_PPM = 100.0
"""Worst-case crystal frequency tolerance cited from the Murata datasheet."""

# --- default NetScatter modulation (deployment configuration) ---------------

DEFAULT_BANDWIDTH_HZ = 500e3
"""Chirp bandwidth / sample rate of the deployed configuration (500 kHz)."""

DEFAULT_SPREADING_FACTOR = 9
"""Spreading factor of the deployed configuration (2^9 = 512 cyclic shifts)."""

DEFAULT_SKIP = 2
"""Deployment guard spacing: every SKIP-th cyclic shift is assigned."""

DEFAULT_ZERO_PAD_FACTOR = 10
"""Zero-padding factor for sub-bin FFT peak resolution (Choir uses 10)."""

MAX_CONCURRENT_DEVICES = 256
"""Deployment size: 2^9 bins / SKIP=2 supports 256 concurrent devices."""

# --- link budget -----------------------------------------------------------

AP_TX_POWER_DBM = 30.0
"""AP output after the RF5110 power amplifier (30 dBm)."""

AP_ANTENNA_GAIN_DBI = 0.0
TAG_ANTENNA_GAIN_DBI = 2.0
"""The tags use a 2 dBi whip antenna."""

ENVELOPE_DETECTOR_SENSITIVITY_DBM = -49.0
"""Tag downlink (query) receive sensitivity."""

QUERY_REQUIRED_SENSITIVITY_DBM = -44.0
"""One-way downlink budget requirement quoted in the paper footnote."""

RECEIVER_SENSITIVITY_SF9_DBM = -123.0
"""Uplink sensitivity of the (500 kHz, SF 9) configuration."""

# --- protocol --------------------------------------------------------------

DOWNLINK_BITRATE_BPS = 160e3
"""AP query messages are ASK-modulated at 160 kbps."""

PREAMBLE_UPCHIRPS = 6
PREAMBLE_DOWNCHIRPS = 2
"""Packet preamble: six upchirps followed by two downchirps."""

PAYLOAD_CRC_BITS = 40
"""Payload plus CRC length used in the link-layer evaluation (Figs. 18-19)."""

QUERY_BITS_CONFIG1 = 32
"""Query length when cyclic shifts are pre-assigned (NetScatter config 1)."""

QUERY_BITS_CONFIG2 = 1760
"""Query length carrying full shift reassignment (NetScatter config 2)."""

LORA_BACKSCATTER_QUERY_BITS = 28
"""Per-device query length of the sequential LoRa-backscatter baseline."""

LORA_BACKSCATTER_FIXED_BITRATE_BPS = 8.7e3
"""Fixed bitrate of the LoRa backscatter baseline without rate adaptation."""

LORA_MAX_BITRATE_BPS = 32e3
"""Maximum LoRa bitrate reachable by ideal rate adaptation (32 kbps)."""

N_ASSOCIATION_SHIFTS = 2
"""Reserved association cyclic shifts (one high-SNR, one low-SNR region)."""

POWER_GAIN_LEVELS_DB = (0.0, -4.0, -10.0)
"""Transmit power gains implemented by the tag switch network."""

# --- measured hardware behaviour (paper Section 4.2) -------------------------

HW_DELAY_JITTER_MAX_S = 3.5e-6
"""Maximum observed MCU/envelope-detector hardware delay variation."""

TAG_FREQ_OFFSET_MAX_HZ = 150.0
"""Tag frequency offsets measured within +/-150 Hz (Fig. 14a)."""

MULTIPATH_DELAY_SPREAD_MIN_S = 50e-9
MULTIPATH_DELAY_SPREAD_MAX_S = 300e-9
"""Indoor delay spread range cited from Devasirvatham / Saleh-Valenzuela."""

MAX_DEPLOYMENT_RANGE_M = 100.0
"""Whole-home / whole-office target propagation distance bound."""

# --- near-far design points (Sections 3.2.3 / 4.3) ---------------------------

SIDE_LOBE_SKIP2_DB = -13.0
"""First sinc side lobe level at SKIP = 2 (paper Fig. 8 annotation)."""

SIDE_LOBE_SKIP3_DB = -21.0
"""Third sinc side lobe level at SKIP = 3 (paper Fig. 8 annotation)."""

DYNAMIC_RANGE_SIM_DB = 40.0
"""Power delta tolerated in simulation with power-aware allocation."""

DYNAMIC_RANGE_PRACTICE_DB = 35.0
"""Power delta tolerated in practice (Fig. 15b maximum)."""

ADJACENT_SHIFT_RESILIENCE_DB = 5.0
"""In-built tolerance when devices sit SKIP = 2 apart (Section 4.3)."""

# --- IC power budget (Section 4.1) -------------------------------------------

IC_POWER_ENVELOPE_DETECTOR_UW = 1.0
IC_POWER_BASEBAND_UW = 5.7
IC_POWER_CHIRP_GENERATOR_UW = 36.0
IC_POWER_SWITCH_NETWORK_UW = 2.5
IC_POWER_TOTAL_UW = 45.2
"""TSMC 65 nm LP IC simulation power breakdown (microwatts)."""
