"""Fig. 19 — network latency vs number of concurrent devices.

The time for the AP to collect one payload from every device: one shared
round for NetScatter (query + preamble + 40 payload symbols, ~49 ms at
config 1 regardless of device count) versus a sum of sequential polls for
the TDMA baselines (~3.3 s at 256 devices without rate adaptation).
Paper reductions at 256: 67.0x / 15.3x (config 1) and 55.1x / 12.6x
(config 2) over LoRa without / with rate adaptation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.airtime import netscatter_network_latency_s
from repro.baselines.lora_backscatter import LoRaBackscatterNetwork
from repro.channel.deployment import Deployment, paper_deployment
from repro.constants import QUERY_BITS_CONFIG1, QUERY_BITS_CONFIG2
from repro.core.config import NetScatterConfig
from repro.experiments.common import ExperimentResult
from repro.utils.rng import RngLike, child_rng, make_rng

DEFAULT_DEVICE_COUNTS = (1, 16, 32, 64, 96, 128, 160, 192, 224, 256)

PAPER_REDUCTIONS = {
    ("config1", "fixed"): 67.0,
    ("config1", "ra"): 15.3,
    ("config2", "fixed"): 55.1,
    ("config2", "ra"): 12.6,
}


def run(
    deployment: Optional[Deployment] = None,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    rng: RngLike = None,
) -> ExperimentResult:
    """Latency accounting across device counts for all schemes."""
    generator = make_rng(rng)
    if deployment is None:
        deployment = paper_deployment(rng=child_rng(generator, 0))
    config = NetScatterConfig(n_association_shifts=0)

    cfg1_latency = netscatter_network_latency_s(config, QUERY_BITS_CONFIG1)
    cfg2_latency = netscatter_network_latency_s(config, QUERY_BITS_CONFIG2)

    result = ExperimentResult(
        experiment_id="fig19",
        title="Network latency vs concurrent devices (ms)",
        columns=[
            "n_devices",
            "lora_fixed_ms",
            "lora_ra_ms",
            "netscatter_cfg1_ms",
            "netscatter_cfg2_ms",
        ],
    )
    for count in device_counts:
        subset = deployment.subset(count)
        snrs = subset.snrs_db().tolist()
        fixed = LoRaBackscatterNetwork(snrs, rate_adaptation=False)
        adaptive = LoRaBackscatterNetwork(snrs, rate_adaptation=True)
        result.rows.append(
            {
                "n_devices": count,
                "lora_fixed_ms": fixed.network_latency_s() * 1e3,
                "lora_ra_ms": adaptive.network_latency_s() * 1e3,
                "netscatter_cfg1_ms": cfg1_latency * 1e3,
                "netscatter_cfg2_ms": cfg2_latency * 1e3,
            }
        )

    last = result.rows[-1]
    reductions: Dict = {
        ("config1", "fixed"): last["lora_fixed_ms"]
        / last["netscatter_cfg1_ms"],
        ("config1", "ra"): last["lora_ra_ms"] / last["netscatter_cfg1_ms"],
        ("config2", "fixed"): last["lora_fixed_ms"]
        / last["netscatter_cfg2_ms"],
        ("config2", "ra"): last["lora_ra_ms"] / last["netscatter_cfg2_ms"],
    }
    for key, paper_value in PAPER_REDUCTIONS.items():
        measured = reductions[key]
        result.check(
            f"{key[0]} vs {key[1]}: latency reduction near the paper's "
            f"{paper_value}x (within 2x)",
            paper_value / 2.0 <= measured <= paper_value * 2.0,
        )
    result.check(
        "NetScatter latency is flat in the device count",
        True,  # by construction: one shared round
    )
    result.check(
        "TDMA latency grows linearly with the device count",
        last["lora_fixed_ms"]
        > 100.0 * result.rows[0]["lora_fixed_ms"] * 0.9,
    )
    result.notes.append(
        "measured reductions at 256: "
        + ", ".join(
            f"{k[0]}/{k[1]} {reductions[k]:.1f}x (paper {v}x)"
            for k, v in PAPER_REDUCTIONS.items()
        )
    )
    return result
