"""Section 2.2 — why existing collision approaches fail for backscatter.

Three quantitative claims, each reproduced analytically and (where
possible) cross-checked by Monte-Carlo:

* Choir's distinct-fraction probability is only ~30% at N = 5 devices;
* Choir's same-shift collision probability is ~9% at N = 10 (SF 9) and
  ~32% at N = 20;
* only 19 (SF, BW) pairs are slope-distinct on a 500 kHz band, of which
  8 survive the sensitivity/bitrate constraints.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.choir import (
    choir_distinct_fraction_probability,
    choir_same_shift_collision_probability,
)
from repro.baselines.sf_pairs import (
    slope_distinct_pairs,
    usable_concurrent_pairs,
    verify_pairwise_distinct_slopes,
)
from repro.experiments.common import ExperimentResult
from repro.utils.rng import RngLike, make_rng


def _distinct_draw_fraction(
    generator, n_trials: int, n_draws: int, n_values: int
) -> float:
    """Monte-Carlo P(all ``n_draws`` uniform draws distinct), batched.

    One ``(n_trials, n_draws)`` RNG call; the per-trial distinct count is
    ``np.unique``-style counting along the trial axis (sort, then count
    nonzero first differences) instead of a Python loop building a
    ``set`` per trial.
    """
    draws = generator.integers(0, n_values, size=(n_trials, n_draws))
    draws.sort(axis=1)
    n_unique = (np.diff(draws, axis=1) != 0).sum(axis=1) + 1
    return float(np.mean(n_unique == n_draws))


def run(
    n_trials: int = 20000,
    rng: RngLike = None,
) -> ExperimentResult:
    """All Section 2.2 counts, with Monte-Carlo cross-checks."""
    generator = make_rng(rng)
    result = ExperimentResult(
        experiment_id="sec2.2",
        title="Existing-approach scaling limits",
        columns=["quantity", "paper", "analytic", "monte_carlo"],
    )

    # Choir distinct-fraction probability at N = 5.
    analytic_5 = choir_distinct_fraction_probability(5)
    mc_5 = _distinct_draw_fraction(generator, n_trials, 5, 10)
    result.rows.append(
        {
            "quantity": "P(distinct fractions), N=5",
            "paper": 0.30,
            "analytic": analytic_5,
            "monte_carlo": mc_5,
        }
    )

    # Same-shift collision probability, SF 9.
    for n, paper_value in ((10, 0.09), (20, 0.32)):
        analytic = choir_same_shift_collision_probability(n, 9)
        collision_rate = 1.0 - _distinct_draw_fraction(
            generator, n_trials, n, 512
        )
        result.rows.append(
            {
                "quantity": f"P(same-shift collision), N={n}, SF9",
                "paper": paper_value,
                "analytic": analytic,
                "monte_carlo": collision_rate,
            }
        )

    # (SF, BW) pair counts.
    distinct = slope_distinct_pairs()
    usable = usable_concurrent_pairs()
    result.rows.append(
        {
            "quantity": "slope-distinct (SF, BW) pairs",
            "paper": 19.0,
            "analytic": float(len(distinct)),
            "monte_carlo": float("nan"),
        }
    )
    result.rows.append(
        {
            "quantity": "usable concurrent pairs",
            "paper": 8.0,
            "analytic": float(len(usable)),
            "monte_carlo": float("nan"),
        }
    )

    result.check(
        "distinct-fraction probability ~30% at N=5",
        abs(analytic_5 - 0.302) < 0.01,
    )
    result.check(
        "collision probability ~9% at N=10 / ~32% at N=20",
        abs(choir_same_shift_collision_probability(10, 9) - 0.085) < 0.01
        and abs(choir_same_shift_collision_probability(20, 9) - 0.313)
        < 0.02,
    )
    result.check("19 slope-distinct pairs", len(distinct) == 19)
    result.check("8 usable concurrent pairs", len(usable) == 8)
    result.check(
        "usable pairs are pairwise slope-distinct",
        verify_pairwise_distinct_slopes(usable),
    )
    result.check(
        "Monte-Carlo agrees with the analytic forms (1% abs)",
        abs(mc_5 - analytic_5) < 0.015,
    )
    return result
