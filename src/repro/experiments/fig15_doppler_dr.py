"""Fig. 15 — Doppler effect and power dynamic range vs bin distance.

(a) 1-CDF of |delta FFT bin| for device speeds 0-5 m/s: motion-induced
Doppler at 900 MHz is tens of hertz, far below the ~1 kHz bin spacing, so
all curves collapse onto the static one.
(b) The maximum tolerable power difference between two concurrent devices
as a function of their FFT-bin separation: ~5 dB at the SKIP = 2 neighbour
distance, rising to ~35 dB mid-spectrum, symmetric about the centre.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.channel.offsets import doppler_bin_shift
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_rounds
from repro.core.receiver import NetScatterReceiver
from repro.experiments.common import ExperimentResult
from repro.hardware.mcu import McuTimingModel
from repro.hardware.oscillator import tag_oscillator
from repro.utils.conversions import timing_offset_to_bins
from repro.utils.rng import RngLike, child_rng, make_rng
from repro.utils.stats import cdf_at


def run_doppler(
    speeds_m_s: Sequence[float] = (0.0, 1.0, 3.0, 5.0),
    n_samples: int = 2000,
    rng: RngLike = None,
) -> ExperimentResult:
    """Fig. 15a: residual bin offsets for different movement speeds."""
    generator = make_rng(rng)
    config = NetScatterConfig()
    params = config.chirp_params
    timing = McuTimingModel()
    mean_latency = (timing.min_latency_s + timing.max_latency_s) / 2.0

    # One device is carried at each speed (the paper's subject holds the
    # same tag), so the oscillator is shared across the speed sweep.
    osc = tag_oscillator()
    osc.calibrate(child_rng(generator, 0))
    samples = {}
    for speed in speeds_m_s:
        doppler = doppler_bin_shift(speed, params)
        values = []
        for _ in range(n_samples):
            dt = timing.sample_latency_s(generator) - mean_latency
            dbin = (
                timing_offset_to_bins(dt, params.bandwidth_hz)
                + osc.offset_bins(params, generator)
                + doppler * float(generator.uniform(-1.0, 1.0))
            )
            values.append(abs(dbin))
        samples[speed] = np.asarray(values)

    result = ExperimentResult(
        experiment_id="fig15a",
        title="1-CDF of |delta FFT bin| under mobility (Doppler)",
        columns=["delta_bin"]
        + [f"speed_{s:g}ms" for s in speeds_m_s],
    )
    for x in np.linspace(0.0, 1.5, 16):
        row = {"delta_bin": float(x)}
        for speed in speeds_m_s:
            row[f"speed_{speed:g}ms"] = 1.0 - cdf_at(samples[speed], x)
        result.rows.append(row)

    medians = {s: float(np.median(samples[s])) for s in speeds_m_s}
    static_median = medians[min(speeds_m_s)]
    fastest_median = medians[max(speeds_m_s)]
    result.check(
        "speed leaves the bin-offset distribution unchanged "
        "(medians within 0.05 bins)",
        abs(fastest_median - static_median) < 0.05,
    )
    result.check(
        "Doppler shift itself is far below one bin",
        doppler_bin_shift(10.0, params) < 0.1,
    )
    result.notes.append(
        f"Doppler at 10 m/s = {doppler_bin_shift(10.0, params):.4f} bins "
        "(paper: 30 Hz vs 976 Hz bin spacing)"
    )
    return result


def _weak_device_ber(
    config: NetScatterConfig,
    separation_bins: int,
    delta_db: float,
    snr_db: float,
    n_symbols: int,
    rng: np.random.Generator,
) -> float:
    """BER of a weak device with a stronger device ``separation_bins`` away.

    All rounds of the point run as one batch through the sparse-readout
    decode engine (compose, noise-load, decode in one pass each).
    """
    params = config.chirp_params
    weak_shift = 0
    strong_shift = separation_bins % config.n_bins
    receiver = NetScatterReceiver(
        config,
        {0: weak_shift, 1: strong_shift},
        detection_snr_db=-100.0,
    )
    n_preamble = 6
    frame_payload = 40
    n_rounds = -(-n_symbols // frame_payload)
    cfo_to_bins = params.n_samples / params.bandwidth_hz

    bits = rng.integers(0, 2, size=(n_rounds, frame_payload, 2))
    bit_tensor = np.ones((n_rounds, n_preamble + frame_payload, 2))
    bit_tensor[:, n_preamble:] = bits
    cfos = rng.normal(scale=300.0, size=(n_rounds, 2))
    bins = (
        np.array([weak_shift, strong_shift], dtype=float)[None, :]
        + cfos * cfo_to_bins
    )
    amplitudes = np.broadcast_to(
        np.array([1.0, 10.0 ** (delta_db / 20.0)]), (n_rounds, 2)
    )
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(n_rounds, 2))

    # Dechirped-domain composition + readout-bin AWGN: see fig12.
    symbols = compose_rounds(
        params, bins, amplitudes, phases, bit_tensor, respread=False
    )
    decode = receiver.decode_rounds(
        symbols,
        n_preamble_upchirps=n_preamble,
        dechirped=True,
        noise_snr_db=snr_db,
        rng=rng,
    )

    weak = decode.column_of(0)
    wrong = (decode.bits[:, :, weak] != bits[:, :, 0])
    errors = int(np.sum(wrong & decode.detected[:, weak][:, None]))
    return errors / (n_rounds * frame_payload)


def run_dynamic_range(
    separations_bins: Sequence[int] = (2, 4, 8, 16, 64, 128, 256),
    deltas_db: Sequence[float] = (0, 5, 10, 15, 20, 25, 30, 35, 40),
    snr_db: float = -5.0,
    n_symbols: int = 800,
    ber_threshold: float = 0.012,
    rng: RngLike = None,
) -> ExperimentResult:
    """Fig. 15b: max tolerable power delta vs FFT-bin separation.

    For each separation, sweep the strong device's power upward until the
    weak device's BER crosses the ~1% packet-error-equivalent threshold;
    report the last tolerable delta.
    """
    generator = make_rng(rng)
    config = NetScatterConfig()
    result = ExperimentResult(
        experiment_id="fig15b",
        title="Tolerable power difference vs FFT-bin separation",
        columns=["separation_bins", "max_tolerable_delta_db"],
    )
    tolerances = {}
    baseline = _weak_device_ber(
        config, 256, 0.0, snr_db, n_symbols, generator
    )
    threshold = max(ber_threshold, 4.0 * baseline)
    for separation in separations_bins:
        tolerated = 0.0
        for delta in deltas_db:
            ber = _weak_device_ber(
                config, separation, float(delta), snr_db, n_symbols, generator
            )
            if ber <= threshold:
                tolerated = float(delta)
            else:
                break
        tolerances[separation] = tolerated
        result.rows.append(
            {
                "separation_bins": int(separation),
                "max_tolerable_delta_db": tolerated,
            }
        )

    near = tolerances[min(separations_bins)]
    far = tolerances[max(separations_bins)]
    result.check(
        "tolerable delta grows with bin separation", far > near
    )
    result.check(
        "SKIP=2 neighbours tolerate at least ~5 dB", near >= 5.0
    )
    result.check(
        "mid-spectrum tolerance reaches ~35 dB", far >= 30.0
    )
    result.notes.append(
        f"tolerance at separation 2 = {near:.0f} dB (paper: 5 dB); "
        f"at 256 = {far:.0f} dB (paper: 35 dB)"
    )
    return result


def run(rng: RngLike = None, **kwargs) -> ExperimentResult:
    """Combined driver (Fig. 15b is the headline panel)."""
    return run_dynamic_range(rng=rng, **kwargs)
