"""Extension experiment: networks larger than one concurrent round.

Section 3.3.3: when the population exceeds the 2^SF/SKIP concurrency
ceiling, the AP groups devices by signal strength (which simultaneously
bounds each round's dynamic range) and schedules groups round-robin.
This experiment scales the population past 256 and measures how latency
and aggregate goodput degrade: latency should grow in *steps of one
round time per group* — still orders of magnitude below TDMA.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.airtime import netscatter_round_airtime_s
from repro.baselines.lora_backscatter import LoRaBackscatterNetwork
from repro.channel.deployment import paper_deployment
from repro.constants import PAYLOAD_CRC_BITS, QUERY_BITS_CONFIG1
from repro.core.config import NetScatterConfig
from repro.core.power_control import snr_groups
from repro.experiments.common import ExperimentResult
from repro.utils.rng import RngLike, child_rng, make_rng


def run(
    populations: Sequence[int] = (128, 256, 512, 1024),
    group_span_db: float = 35.0,
    rng: RngLike = None,
) -> ExperimentResult:
    """Latency/goodput vs population size with SNR grouping."""
    generator = make_rng(rng)
    config = NetScatterConfig(n_association_shifts=0)
    round_time = netscatter_round_airtime_s(
        config, QUERY_BITS_CONFIG1
    ).total_s

    result = ExperimentResult(
        experiment_id="ext-groups",
        title="Scheduling beyond one round: latency vs population",
        columns=[
            "n_devices",
            "n_groups",
            "netscatter_latency_ms",
            "lora_fixed_latency_ms",
            "reduction",
        ],
    )
    for population in populations:
        deployment = paper_deployment(
            n_devices=population, rng=child_rng(generator, population)
        )
        snrs = deployment.snrs_db().tolist()
        # Group by SNR span, then split to the concurrency ceiling.
        raw_groups = snr_groups(snrs, group_span_db)
        n_groups = 0
        for group in raw_groups:
            n_groups += math.ceil(len(group) / config.max_devices)
        n_groups = max(1, n_groups)
        netscatter_latency = n_groups * round_time
        lora_latency = LoRaBackscatterNetwork(snrs).network_latency_s()
        result.rows.append(
            {
                "n_devices": population,
                "n_groups": n_groups,
                "netscatter_latency_ms": netscatter_latency * 1e3,
                "lora_fixed_latency_ms": lora_latency * 1e3,
                "reduction": lora_latency / netscatter_latency,
            }
        )

    rows = result.rows
    result.check(
        "latency grows in whole rounds (steps), not per device",
        all(
            abs(r["netscatter_latency_ms"] / (round_time * 1e3)
                - r["n_groups"]) < 1e-9
            for r in rows
        ),
    )
    result.check(
        "group count tracks ceil(population / 256) within the SNR-span "
        "constraint",
        all(
            r["n_groups"] >= math.ceil(r["n_devices"] / config.max_devices)
            for r in rows
        ),
    )
    result.check(
        "reduction over TDMA stays above 10x at every population",
        all(r["reduction"] > 10.0 for r in rows),
    )
    per_device_bits = PAYLOAD_CRC_BITS
    goodput_1024 = (
        rows[-1]["n_devices"] * per_device_bits
        / (rows[-1]["netscatter_latency_ms"] / 1e3)
    )
    result.notes.append(
        f"at {rows[-1]['n_devices']:.0f} devices: "
        f"{rows[-1]['n_groups']:.0f} groups, aggregate goodput "
        f"{goodput_1024 / 1e3:.0f} kbps (the paper's 2 MHz-for-1000-"
        "devices claim scales through bandwidth aggregation instead)"
    )
    return result
