"""Fig. 4 — CDF of FFT-bin variation: backscatter tags vs LoRa radios.

The paper records chirp symbols from its tags and from active LoRa radios
(BW 500 kHz, SF 9) and plots the CDF of the per-measurement FFT-bin
deviation. Backscatter tags (3 MHz baseband) always stay below a third of
a bin; radios (900 MHz synthesis) spread over multiple bins — the
quantitative reason Choir cannot disambiguate backscatter devices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import NetScatterConfig
from repro.experiments.common import ExperimentResult
from repro.hardware.oscillator import radio_oscillator, tag_oscillator
from repro.utils.rng import RngLike, child_rng, make_rng
from repro.utils.stats import cdf_at


def run(
    n_devices: int = 64,
    n_packets: int = 100,
    config: Optional[NetScatterConfig] = None,
    rng: RngLike = None,
) -> ExperimentResult:
    """Simulate per-packet bin offsets for both device classes."""
    if config is None:
        config = NetScatterConfig()
    params = config.chirp_params
    generator = make_rng(rng)

    samples = {"backscatter": [], "radio": []}
    for kind, factory in (
        ("backscatter", tag_oscillator),
        ("radio", radio_oscillator),
    ):
        for device in range(n_devices):
            osc = factory()
            osc.calibrate(child_rng(generator, device))
            for _ in range(n_packets):
                samples[kind].append(abs(osc.offset_bins(params, generator)))

    result = ExperimentResult(
        experiment_id="fig04",
        title="CDF of |delta FFT bin|: backscatter tags vs LoRa radios "
        f"(BW={params.bandwidth_hz/1e3:.0f} kHz, SF={params.spreading_factor})",
        columns=["delta_bin", "cdf_backscatter", "cdf_radio"],
    )

    grid = np.linspace(0.0, 7.0, 29)
    for x in grid:
        result.rows.append(
            {
                "delta_bin": float(x),
                "cdf_backscatter": cdf_at(samples["backscatter"], x),
                "cdf_radio": cdf_at(samples["radio"], x),
            }
        )

    backscatter_max = float(np.max(samples["backscatter"]))
    radio_spread = float(np.quantile(samples["radio"], 0.9))
    result.check(
        "backscatter variation always below 1/3 FFT bin",
        backscatter_max < 1.0 / 3.0,
    )
    result.check(
        "radios spread over multiple FFT bins (90th pct > 1 bin)",
        radio_spread > 1.0,
    )
    result.notes.append(
        f"max backscatter |dbin| = {backscatter_max:.3f}; "
        f"radio 90th pct = {radio_spread:.2f} bins"
    )
    return result
