"""Extension experiment: NetScatter vs Choir, executable head-to-head.

Section 2.2 argues Choir cannot scale for backscatter; this experiment
makes the argument executable. Both decoders face the same concurrent
population of backscatter devices (narrow fractional-offset spread, as
measured in Fig. 4). Choir must attribute classic-CSS peaks by bin
fraction; NetScatter devices own their shifts by construction. We sweep
the device count and report each scheme's per-symbol attribution/decoding
success.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.choir import (
    CHOIR_FRACTION_RESOLUTION,
    choir_distinct_fraction_probability,
    choir_same_shift_collision_probability,
)
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_rounds
from repro.core.receiver import NetScatterReceiver
from repro.experiments.common import ExperimentResult
from repro.utils.rng import RngLike, make_rng

TAG_OFFSET_STD_BINS = 0.08
"""Backscatter fractional-offset spread (Fig. 4: always under 1/3 bin)."""


def _netscatter_success(
    config: NetScatterConfig, n_devices: int, n_rounds: int, rng
) -> float:
    """Per-device payload success under NetScatter's assignment.

    All rounds run as one batch through the sparse-readout engine; a
    device delivers its packet when it is detected and every payload bit
    decodes correctly.
    """
    params = config.chirp_params
    slots = np.linspace(
        0, config.n_bins, n_devices, endpoint=False
    ).astype(int)
    slots = (slots // config.skip) * config.skip
    receiver = NetScatterReceiver(
        config, {i: int(slots[i]) for i in range(n_devices)}
    )
    payload_len = 8
    offsets = rng.normal(
        scale=TAG_OFFSET_STD_BINS, size=(n_rounds, n_devices)
    )
    bits = rng.integers(0, 2, size=(n_rounds, payload_len, n_devices))
    bit_tensor = np.concatenate(
        [np.ones((n_rounds, 6, n_devices)), bits], axis=1
    )
    symbols = compose_rounds(
        params,
        slots.astype(float)[None, :] + offsets,
        np.ones((n_rounds, n_devices)),
        rng.uniform(0, 2 * np.pi, size=(n_rounds, n_devices)),
        bit_tensor,
        respread=False,
    )
    decode = receiver.decode_rounds(
        symbols, dechirped=True, noise_snr_db=0.0, rng=rng
    )
    delivered = decode.detected & np.all(
        decode.bits == bits.astype(np.uint8), axis=1
    )
    return float(delivered.mean())


def _choir_success(n_devices: int, n_rounds: int, sf: int, rng) -> float:
    """Choir's per-symbol full-attribution probability for backscatter.

    A symbol succeeds only if (a) every device's quantised fraction is
    unique and (b) no two devices picked the same cyclic shift. With
    backscatter's narrow offset spread, (a) dominates the failure rate.
    """
    resolution = CHOIR_FRACTION_RESOLUTION
    successes = 0
    for _ in range(n_rounds):
        offsets = rng.normal(scale=TAG_OFFSET_STD_BINS, size=n_devices)
        fractions = set(
            int(round((o % 1.0) * resolution)) % resolution for o in offsets
        )
        if len(fractions) < n_devices:
            continue
        shifts = rng.integers(0, 2**sf, size=n_devices)
        if len(set(shifts.tolist())) < n_devices:
            continue
        successes += 1
    return successes / n_rounds


def run(
    device_counts: Sequence[int] = (2, 5, 10, 20, 50),
    n_rounds: int = 200,
    rng: RngLike = None,
) -> ExperimentResult:
    """Head-to-head scaling sweep."""
    generator = make_rng(rng)
    config = NetScatterConfig(n_association_shifts=0)
    result = ExperimentResult(
        experiment_id="ext-choir",
        title="NetScatter vs Choir attribution success for backscatter "
        "populations",
        columns=[
            "n_devices",
            "netscatter_delivery",
            "choir_success",
            "choir_ideal_radio",
        ],
    )
    for n in device_counts:
        netscatter = _netscatter_success(
            config, n, max(2, n_rounds // 40), generator
        )
        choir = _choir_success(n, n_rounds, 9, generator)
        ideal = choir_distinct_fraction_probability(n) * (
            1.0 - choir_same_shift_collision_probability(n, 9)
        )
        result.rows.append(
            {
                "n_devices": n,
                "netscatter_delivery": netscatter,
                "choir_success": choir,
                "choir_ideal_radio": ideal,
            }
        )

    rows = result.rows
    result.check(
        "NetScatter delivery stays above 95% across the sweep",
        all(r["netscatter_delivery"] > 0.95 for r in rows),
    )
    result.check(
        "Choir collapses for backscatter beyond a handful of devices",
        all(
            r["choir_success"] < 0.2
            for r in rows
            if r["n_devices"] >= 5
        ),
    )
    result.check(
        "even ideal-radio Choir dies by 20 devices",
        all(
            r["choir_ideal_radio"] < 0.05
            for r in rows
            if r["n_devices"] >= 20
        ),
    )
    return result
