"""Fig. 16 — spectrum of the backscattered signal at three power levels.

The paper shows spectrograms of the tag's transmission at its 0 / -4 /
-10 dB gain settings: the chirp occupies the same 500 kHz band at every
level (the switch network scales power without distorting the spectrum),
and the integrated power drops by the programmed amount.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import POWER_GAIN_LEVELS_DB
from repro.core.config import NetScatterConfig
from repro.experiments.common import ExperimentResult
from repro.hardware.switch_network import SwitchNetwork
from repro.phy.chirp import oversampled_upchirp
from repro.phy.spectrum import power_spectral_density
from repro.utils.conversions import amplitude_from_db
from repro.utils.rng import RngLike, make_rng


def run(
    gains_db: Sequence[float] = POWER_GAIN_LEVELS_DB,
    n_symbols: int = 16,
    noise_floor_db: float = -60.0,
    rng: RngLike = None,
) -> ExperimentResult:
    """PSD of a chirp train at each switch-network power level."""
    generator = make_rng(rng)
    config = NetScatterConfig()
    params = config.chirp_params
    # Render at 2x the chirp bandwidth so out-of-band leakage is visible
    # (a critically-sampled chirp fills its whole Nyquist band by
    # construction); the chirp itself occupies only [-BW/2, +BW/2].
    base = np.tile(oversampled_upchirp(params, 2), n_symbols)
    noise_scale = amplitude_from_db(noise_floor_db)

    network = SwitchNetwork(gains_db)
    result = ExperimentResult(
        experiment_id="fig16",
        title="Backscattered-signal spectrum at the three power levels",
        columns=["gain_db", "in_band_power_db", "occupied_bw_khz",
                 "out_of_band_leakage_db"],
    )

    in_band_powers = []
    for level in network.levels:
        signal = amplitude_from_db(level.gain_db) * base
        noise = noise_scale * (
            generator.normal(size=base.size)
            + 1j * generator.normal(size=base.size)
        ) / np.sqrt(2.0)
        freqs, psd_db = power_spectral_density(
            signal + noise, params.bandwidth_hz * 2.0, nfft=512
        )
        # The oversampled chirp sweeps 0 -> BW, so it occupies the
        # positive half of the 2x-sampled view; the negative half is
        # where spurious leakage would show up.
        in_band = (freqs >= 0.0) & (freqs <= params.bandwidth_hz)
        out_band = freqs < -0.25 * params.bandwidth_hz
        in_power = 10.0 * np.log10(
            np.mean(10.0 ** (psd_db[in_band] / 10.0))
        )
        out_power = 10.0 * np.log10(
            np.mean(10.0 ** (psd_db[out_band] / 10.0))
        )
        threshold = in_power - 6.0
        occupied = freqs[psd_db >= threshold]
        occupied_bw = (
            float(occupied.max() - occupied.min()) if occupied.size else 0.0
        )
        in_band_powers.append(in_power)
        result.rows.append(
            {
                "gain_db": level.gain_db,
                "in_band_power_db": float(in_power),
                "occupied_bw_khz": occupied_bw / 1e3,
                "out_of_band_leakage_db": float(out_power - in_power),
            }
        )

    deltas = np.diff(in_band_powers)
    programmed = np.diff([lv.gain_db for lv in network.levels])
    result.check(
        "measured level steps match the programmed gains (+/-1 dB)",
        bool(np.all(np.abs(deltas - programmed) < 1.0)),
    )
    bw_spread = max(r["occupied_bw_khz"] for r in result.rows) - min(
        r["occupied_bw_khz"] for r in result.rows
    )
    result.check(
        "occupied bandwidth identical at all levels (clean spectrum)",
        bw_spread < 50.0,
    )
    result.check(
        "out-of-band leakage stays 20+ dB down at every level",
        all(r["out_of_band_leakage_db"] < -20.0 for r in result.rows),
    )
    return result
