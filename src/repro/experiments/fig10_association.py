"""Fig. 10 — the association flow, exercised over the air.

Device 1 is already a member sending data; device 2 joins using a
reserved association shift *in the same concurrent round*. The AP must
decode device 1's payload and notice the association request, grant a
shift via the query, and confirm on the ACK. This experiment runs the
whole exchange at waveform level and reports round-by-round outcomes.
"""

from __future__ import annotations

from typing import Optional

from repro.channel.awgn import awgn
from repro.core.allocation import association_shifts
from repro.core.config import NetScatterConfig
from repro.core.dcss import (
    DeviceTransmission,
    compose_preamble_and_payload_symbols,
)
from repro.core.receiver import NetScatterReceiver
from repro.experiments.common import ExperimentResult
from repro.protocol.association import AssociationController
from repro.utils.rng import RngLike, make_rng


def run(
    n_trials: int = 10,
    snr_db: float = 0.0,
    config: Optional[NetScatterConfig] = None,
    rng: RngLike = None,
) -> ExperimentResult:
    """Run Fig. 10's join-while-transmitting flow ``n_trials`` times."""
    if config is None:
        config = NetScatterConfig()  # association shifts reserved
    generator = make_rng(rng)
    assoc_shifts = association_shifts(config)
    params = config.chirp_params

    result = ExperimentResult(
        experiment_id="fig10",
        title="Association while a member transmits (waveform level)",
        columns=[
            "trial",
            "member_payload_ok",
            "request_detected",
            "granted_shift",
            "ack_confirmed",
        ],
    )
    joins = 0
    member_ok = 0
    for trial in range(n_trials):
        controller = AssociationController(config)
        member_grant, _ = controller.handle_request(1, measured_snr_db=15.0)
        member_shift = controller.handle_ack(1)

        # Round A: member data + newcomer's association request on the
        # reserved high-SNR shift, concurrently.
        payload = generator.integers(0, 2, 12).tolist()
        request_shift = assoc_shifts[0]
        txs = [
            DeviceTransmission(shift=member_shift, bits=payload),
            DeviceTransmission(shift=request_shift, bits=[1] * 12),
        ]
        symbols = compose_preamble_and_payload_symbols(
            params, txs, rng=generator
        )
        noisy = [awgn(s, snr_db, generator) for s in symbols]
        receiver = NetScatterReceiver(
            config, {1: member_shift, 999: request_shift}
        )
        decode = receiver.decode_fast_symbols(noisy)

        payload_ok = decode.bits_of(1) == payload
        request_seen = decode.devices[999].detected
        granted_shift = -1
        ack_ok = False
        if request_seen:
            grant, _ = controller.handle_request(2, measured_snr_db=8.0)
            granted_shift = grant.cyclic_shift * config.skip
            # Round B: the newcomer ACKs on its granted shift.
            ack_tx = [
                DeviceTransmission(shift=member_shift, bits=payload),
                DeviceTransmission(shift=granted_shift, bits=[1] * 12),
            ]
            symbols_b = compose_preamble_and_payload_symbols(
                params, ack_tx, rng=generator
            )
            noisy_b = [awgn(s, snr_db, generator) for s in symbols_b]
            receiver_b = NetScatterReceiver(
                config, {1: member_shift, 2: granted_shift}
            )
            decode_b = receiver_b.decode_fast_symbols(noisy_b)
            if decode_b.devices[2].detected:
                controller.handle_ack(2)
                ack_ok = True

        member_ok += int(payload_ok)
        joins += int(ack_ok)
        result.rows.append(
            {
                "trial": trial,
                "member_payload_ok": payload_ok,
                "request_detected": request_seen,
                "granted_shift": granted_shift,
                "ack_confirmed": ack_ok,
            }
        )

    result.check(
        "member data survives concurrent association traffic",
        member_ok == n_trials,
    )
    result.check(
        "every join completes request -> grant -> ACK",
        joins == n_trials,
    )
    result.notes.append(
        f"{joins}/{n_trials} joins completed; member payload intact in "
        f"{member_ok}/{n_trials} rounds"
    )
    return result
