"""Fig. 7a — backscatter power gain vs Z0 impedance.

Sweeping the modulation impedance Z0 from a short toward large values
(against an open Z1) traces the gain curve the paper uses to design the
multi-level switch network: 0 dB at Z0 = 0, falling monotonically by tens
of dB as Z0 grows past the antenna impedance.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.impedance import (
    backscatter_power_gain_db,
    paper_fig7a_series,
    solve_z0_for_gain_db,
)
from repro.hardware.switch_network import SwitchNetwork


def run(n_points: int = 41, z0_max_ohm: float = 1000.0) -> ExperimentResult:
    """Reproduce the Fig. 7a sweep and the three-level design points."""
    z0, gains = paper_fig7a_series(n_points=n_points, z0_max_ohm=z0_max_ohm)
    result = ExperimentResult(
        experiment_id="fig07a",
        title="Backscatter power gain vs Z0 (Z1 = open)",
        columns=["z0_ohm", "gain_db"],
    )
    for z, g in zip(z0, gains):
        result.rows.append({"z0_ohm": float(z), "gain_db": float(g)})

    result.check("gain at Z0 = 0 (short) is 0 dB", abs(gains[0]) < 1e-9)
    result.check(
        "gain decreases monotonically with Z0",
        bool(np.all(np.diff(gains) < 1e-12)),
    )
    result.check(
        "gain falls below -20 dB within the swept range",
        float(gains[-1]) < -20.0,
    )

    network = SwitchNetwork()
    result.check(
        "3-level network realises 0/-4/-10 dB",
        network.verify_realisation(),
    )
    for level in network.levels:
        check = abs(
            backscatter_power_gain_db(level.z0_ohm, None) - level.gain_db
        ) < 0.05
        result.notes.append(
            f"{level} (realisation {'ok' if check else 'off'})"
        )
    result.notes.append(
        "design inverse: Z0(-4 dB) = "
        f"{solve_z0_for_gain_db(-4.0):.1f} ohm, Z0(-10 dB) = "
        f"{solve_z0_for_gain_db(-10.0):.1f} ohm"
    )
    return result
