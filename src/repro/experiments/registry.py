"""Registry mapping experiment ids to their drivers.

Used by the ``python -m repro`` command-line runner and by tooling that
wants to enumerate everything the reproduction can regenerate.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.experiments import (
    choir_comparison,
    group_scaling,
    fig04_choir_cdf,
    fig07_power_gain,
    fig08_sidelobes,
    fig09_snr_variance,
    fig10_association,
    fig12_nearfar_ber,
    fig14_offsets,
    fig15_doppler_dr,
    fig16_spectrogram,
    fig17_phy_rate,
    fig18_linklayer,
    fig19_latency,
    sec22_analytics,
    table1_configs,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig04": fig04_choir_cdf.run,
    "table1": table1_configs.run,
    "fig07": fig07_power_gain.run,
    "fig08": fig08_sidelobes.run,
    "fig09": fig09_snr_variance.run,
    "fig10": fig10_association.run,
    "fig12": fig12_nearfar_ber.run,
    "fig14a": fig14_offsets.run_frequency_offsets,
    "fig14b": fig14_offsets.run_residual_bins,
    "fig15a": fig15_doppler_dr.run_doppler,
    "fig15b": fig15_doppler_dr.run_dynamic_range,
    "fig16": fig16_spectrogram.run,
    "fig17": fig17_phy_rate.run,
    "fig18": fig18_linklayer.run,
    "fig19": fig19_latency.run,
    "sec22": sec22_analytics.run,
    "ext-choir": choir_comparison.run,
    "ext-groups": group_scaling.run,
}

# Reduced-scale keyword arguments for a fast smoke pass of everything.
QUICK_KWARGS: Dict[str, dict] = {
    "fig04": dict(n_devices=24, n_packets=30),
    "fig09": dict(duration_s=600.0),
    "fig10": dict(n_trials=4),
    "fig12": dict(snrs_db=(-16, -10), n_symbols=1500),
    "fig14a": dict(n_devices=32, n_packets=20),
    "fig14b": dict(n_devices=16, n_packets=40),
    "fig15a": dict(n_samples=500),
    "fig15b": dict(
        separations_bins=(2, 64, 256),
        deltas_db=(0, 5, 15, 30, 35),
        n_symbols=800,
        ber_threshold=0.015,
    ),
    "fig16": dict(n_symbols=8),
    "fig17": dict(device_counts=(1, 64, 256), n_rounds=1),
    "fig18": dict(device_counts=(1, 256), n_rounds=1),
    "fig19": dict(device_counts=(1, 64, 256)),
    "sec22": dict(n_trials=5000),
    "ext-choir": dict(n_rounds=120),
    "ext-groups": dict(populations=(128, 512)),
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, quick: bool = False, seed: int = 0):
    """Run one experiment by id; returns its ExperimentResult."""
    if experiment_id not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(EXPERIMENTS)}"
        )
    kwargs = dict(QUICK_KWARGS.get(experiment_id, {})) if quick else {}
    kwargs["rng"] = seed
    driver = EXPERIMENTS[experiment_id]
    try:
        return driver(**kwargs)
    except TypeError:
        # A few drivers (table1, fig07, fig08) are deterministic and
        # take no rng/scale arguments.
        kwargs.pop("rng", None)
        return driver(**kwargs)
