"""Fig. 12 — near-far BER with power-aware cyclic-shift assignment.

Two devices at cyclic shifts 2 and 258 (SF 9, BW 500 kHz), Gaussian
frequency mismatch of 300 Hz std on each, 10^4 OOK symbols: the BER of
the weak device stays on the single-device curve even when the second
device is 35-40 dB stronger, and departs at 45 dB — the simulated
dynamic-range claim behind the allocation design.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_rounds
from repro.core.receiver import NetScatterReceiver
from repro.experiments.common import ExperimentResult
from repro.utils.rng import RngLike, make_rng

WEAK_SHIFT = 2
STRONG_SHIFT = 258
FREQ_MISMATCH_STD_HZ = 300.0


def _ber_for_point(
    config: NetScatterConfig,
    snr_db: float,
    power_delta_db: Optional[float],
    n_symbols: int,
    rng: np.random.Generator,
    frame_payload: int = 40,
    n_preamble: int = 6,
) -> float:
    """BER of the weak device at one (SNR, power-delta) point.

    The whole Monte-Carlo point is one batch: every round's bits,
    per-packet CFOs and phases are drawn up front, composed as a
    ``(n_rounds, n_symbols, 2^SF)`` tensor, noise-loaded in one draw and
    decoded in one pass by whichever spectral backend the calibrated
    planner predicts cheapest at this occupancy (``readout="auto"`` —
    two devices out of 256 shifts lands on the sparse matmul).
    """
    params = config.chirp_params
    assignments = {0: WEAK_SHIFT}
    if power_delta_db is not None:
        assignments[1] = STRONG_SHIFT
    receiver = NetScatterReceiver(
        config, assignments, detection_snr_db=-100.0, readout="auto"
    )
    n_devices = len(assignments)
    n_rounds = -(-n_symbols // frame_payload)
    cfo_to_bins = params.n_samples / params.bandwidth_hz

    bits = rng.integers(0, 2, size=(n_rounds, frame_payload, n_devices))
    bit_tensor = np.ones((n_rounds, n_preamble + frame_payload, n_devices))
    bit_tensor[:, n_preamble:] = bits
    cfos_hz = rng.normal(
        scale=FREQ_MISMATCH_STD_HZ, size=(n_rounds, n_devices)
    )
    base_shifts = np.array(
        [WEAK_SHIFT, STRONG_SHIFT][:n_devices], dtype=float
    )
    bins = base_shifts[None, :] + cfos_hz * cfo_to_bins
    amplitudes = np.ones((n_rounds, n_devices))
    if power_delta_db is not None:
        amplitudes[:, 1] = 10.0 ** (power_delta_db / 20.0)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(n_rounds, n_devices))

    # Compose in the dechirped domain and let the engine inject the
    # channel AWGN at the readout bins (statistically exact, and orders
    # of magnitude fewer Gaussian draws than a time-domain noise tensor).
    symbols = compose_rounds(
        params, bins, amplitudes, phases, bit_tensor, respread=False
    )
    decode = receiver.decode_rounds(
        symbols,
        n_preamble_upchirps=n_preamble,
        dechirped=True,
        noise_snr_db=snr_db,
        rng=rng,
    )

    weak = decode.column_of(0)
    wrong = (decode.bits[:, :, weak] != bits[:, :, 0])
    errors = int(np.sum(wrong & decode.detected[:, weak][:, None]))
    return errors / (n_rounds * frame_payload)


def run(
    snrs_db: Sequence[float] = (-20, -18, -16, -14, -12, -10),
    power_deltas_db: Sequence[Optional[float]] = (None, 35.0, 40.0, 45.0),
    n_symbols: int = 10000,
    rng: RngLike = None,
) -> ExperimentResult:
    """Sweep SNR x power-delta and tabulate the weak device's BER."""
    config = NetScatterConfig()
    generator = make_rng(rng)

    def label(delta: Optional[float]) -> str:
        return "single_device" if delta is None else f"delta_{delta:.0f}dB"

    columns = ["snr_db"] + [label(d) for d in power_deltas_db]
    result = ExperimentResult(
        experiment_id="fig12",
        title="Weak-device BER vs SNR under a stronger concurrent device "
        "(shifts 2 vs 258)",
        columns=columns,
    )
    series: dict = {label(d): [] for d in power_deltas_db}
    for snr in snrs_db:
        row = {"snr_db": float(snr)}
        for delta in power_deltas_db:
            ber = _ber_for_point(
                config, float(snr), delta, n_symbols, generator
            )
            row[label(delta)] = ber
            series[label(delta)].append(ber)
        result.rows.append(row)

    single = np.array(series["single_device"])
    floor = 1.0 / n_symbols

    def close_to_single(key: str, factor: float) -> bool:
        curve = np.array(series[key])
        return bool(
            np.all(curve <= np.maximum(single * factor, 5 * floor))
        )

    # Tolerances encode the paper's reading: 35 dB is clean, 40 dB is the
    # simulated limit (our waveform model shows the first mild degradation
    # there, consistent with the paper's own note that practice tops out
    # at 35 dB), 45 dB is clearly degraded.
    if "delta_35dB" in series:
        result.check(
            "35 dB delta leaves BER on the single-device curve",
            close_to_single("delta_35dB", 3.0),
        )
    if "delta_40dB" in series:
        result.check(
            "40 dB delta stays within ~5x of the single-device curve",
            close_to_single("delta_40dB", 6.0),
        )
    if "delta_45dB" in series:
        high_snr_ber = series["delta_45dB"][-1]
        result.check(
            "45 dB delta degrades BER at high SNR",
            high_snr_ber > max(4.0 * single[-1], 10 * floor),
        )
    result.check(
        "single-device BER decreases with SNR",
        single[0] > single[-1],
    )
    return result
