"""Experiment drivers: one module per paper figure/table.

Each module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose ``report()``
prints the same rows/series the paper's figure shows, plus the headline
comparisons recorded in EXPERIMENTS.md. The benchmark harness calls these
with reduced trial counts; the numbers in EXPERIMENTS.md come from the
default (larger) counts.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
