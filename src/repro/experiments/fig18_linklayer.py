"""Fig. 18 — link-layer data rate vs number of concurrent devices.

Adds the end-to-end overheads to Fig. 17's payload-only comparison: the
AP query (32 bits for NetScatter config 1, 1760 bits for config 2, 28
bits per poll for LoRa) and the 8-symbol preamble — which NetScatter pays
once per round for everyone and TDMA pays once per device. Paper gains at
256 devices: 61.9x / 14.1x (config 1) and 50.9x / 11.6x (config 2) over
LoRa without / with rate adaptation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.airtime import netscatter_round_airtime_s
from repro.baselines.lora_backscatter import LoRaBackscatterNetwork
from repro.campaign.presets import (
    DEFAULT_DEVICE_COUNTS,
    SWEEP_CONFIG,
    fig18_campaign,
)
from repro.campaign.runner import run_campaign_sweep
from repro.channel.deployment import Deployment, paper_deployment
from repro.constants import QUERY_BITS_CONFIG1, QUERY_BITS_CONFIG2
from repro.core.config import NetScatterConfig
from repro.experiments.common import ExperimentResult
from repro.phy.packet import PacketStructure
from repro.protocol.network import sweep_device_counts
from repro.utils.rng import RngLike, make_rng

PAPER_GAINS = {
    ("config1", "fixed"): 61.9,
    ("config1", "ra"): 14.1,
    ("config2", "fixed"): 50.9,
    ("config2", "ra"): 11.6,
}


def run(
    deployment: Optional[Deployment] = None,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    n_rounds: int = 3,
    rng: RngLike = None,
    engine: str = "auto",
    workers: Optional[int] = None,
    float32_min_devices: Optional[int] = None,
    store=None,
) -> ExperimentResult:
    """Sweep device counts; tabulate link-layer rates for all schemes.

    The PHY decode is query-length agnostic, so each count runs *one*
    batched sweep point (occupancy-adaptive ``"auto"`` engine by
    default, which shifts the near-full-occupancy tail onto the padded
    FFT) and both NetScatter configurations are accounted from the same
    per-round goodput — the config-2 rate just divides by its
    longer-query round air time. The points execute through the
    campaign layer (:func:`repro.campaign.presets.fig18_campaign`) and
    are *content-identical* to Fig. 17's under the same base seed, so
    passing the same ``store`` to both drivers computes the shared
    sweep once. Explicitly-passed custom deployments keep the direct
    :func:`sweep_device_counts` path (``store`` ignored).
    """
    generator = make_rng(rng)
    config = NetScatterConfig(**SWEEP_CONFIG)
    if deployment is None:
        spec = fig18_campaign(
            rng=generator,
            device_counts=device_counts,
            n_rounds=n_rounds,
            engine=engine,
            float32_min_devices=float32_min_devices,
        )
        deployment = paper_deployment(rng=spec.deployment["seed"])
        sweep = run_campaign_sweep(spec, store=store, workers=workers)
    else:
        sweep = sweep_device_counts(
            deployment,
            device_counts,
            config=config,
            n_rounds=n_rounds,
            query_bits=QUERY_BITS_CONFIG1,
            rng=generator,
            engine=engine,
            workers=workers,
            float32_min_devices=float32_min_devices,
        )

    result = ExperimentResult(
        experiment_id="fig18",
        title="Link-layer data rate vs concurrent devices (kbps)",
        columns=[
            "n_devices",
            "lora_fixed_kbps",
            "lora_ra_kbps",
            "netscatter_cfg1_kbps",
            "netscatter_cfg2_kbps",
        ],
    )
    cfg2_airtime = netscatter_round_airtime_s(
        config, QUERY_BITS_CONFIG2, PacketStructure()
    )
    for count, metrics in zip(device_counts, sweep):
        snrs = deployment.subset(count).snrs_db().tolist()
        fixed = LoRaBackscatterNetwork(snrs, rate_adaptation=False)
        adaptive = LoRaBackscatterNetwork(snrs, rate_adaptation=True)
        row: Dict[str, object] = {
            "n_devices": count,
            "lora_fixed_kbps": fixed.link_layer_rate_bps() / 1e3,
            "lora_ra_kbps": adaptive.link_layer_rate_bps() / 1e3,
            "netscatter_cfg1_kbps": metrics.link_layer_rate_bps / 1e3,
            "netscatter_cfg2_kbps": (
                metrics.goodput_bits_per_round / cfg2_airtime.total_s
            )
            / 1e3,
        }
        result.rows.append(row)

    last = result.rows[-1]
    gains = {
        ("config1", "fixed"): last["netscatter_cfg1_kbps"]
        / last["lora_fixed_kbps"],
        ("config1", "ra"): last["netscatter_cfg1_kbps"]
        / last["lora_ra_kbps"],
        ("config2", "fixed"): last["netscatter_cfg2_kbps"]
        / last["lora_fixed_kbps"],
        ("config2", "ra"): last["netscatter_cfg2_kbps"]
        / last["lora_ra_kbps"],
    }
    for key, paper_value in PAPER_GAINS.items():
        measured = gains[key]
        result.check(
            f"{key[0]} vs {key[1]}: gain near the paper's "
            f"{paper_value}x (within 2x)",
            paper_value / 2.0 <= measured <= paper_value * 2.0,
        )
    result.check(
        "config 2's longer query costs link-layer rate vs config 1",
        last["netscatter_cfg2_kbps"] < last["netscatter_cfg1_kbps"],
    )
    result.notes.append(
        "measured gains at 256: "
        + ", ".join(
            f"{k[0]}/{k[1]} {gains[k]:.1f}x (paper {v}x)"
            for k, v in PAPER_GAINS.items()
        )
    )
    return result
