"""Fig. 8 — normalised power spectrum of a zero-padded dechirped chirp.

The figure shows the main lobe and sinc side lobes of a single chirp
transmission on the interpolated FFT grid, annotated with the side-lobe
levels at the SKIP = 2 (-13 dB) and SKIP = 3 (-21 dB) neighbour
positions. Those two levels are the whole near-far story in one plot.
"""

from __future__ import annotations

from typing import Optional

from repro.constants import SIDE_LOBE_SKIP2_DB, SIDE_LOBE_SKIP3_DB
from repro.core.config import NetScatterConfig
from repro.experiments.common import ExperimentResult
from repro.phy.spectrum import dirichlet_side_lobe_db, side_lobe_profile


def run(
    config: Optional[NetScatterConfig] = None,
    max_offset_bins: float = 8.0,
    grid_step_bins: float = 0.1,
) -> ExperimentResult:
    """Trace the side-lobe profile near the peak and check the landmarks."""
    if config is None:
        config = NetScatterConfig()
    profile = side_lobe_profile(
        config.chirp_params, config.zero_pad_factor
    )

    result = ExperimentResult(
        experiment_id="fig08",
        title="Normalised power spectrum of one dechirped chirp "
        "(zero-padded FFT)",
        columns=["offset_bins", "power_db", "dirichlet_db"],
    )
    steps = int(round(max_offset_bins / grid_step_bins))
    for i in range(steps + 1):
        offset = i * grid_step_bins
        result.rows.append(
            {
                "offset_bins": offset,
                "power_db": profile.at_natural_bin(offset),
                "dirichlet_db": dirichlet_side_lobe_db(
                    offset, config.n_bins
                ),
            }
        )

    # The paper's annotations mark sinc side-lobe levels: the -13 dB
    # star at the SKIP = 2 position is the first side lobe (offset
    # ~1.43 bins, -13.3 dB) and the -21 dB star at SKIP = 3 is the third
    # lobe (~3.47 bins, -20.8 dB). We verify both lobes, plus the
    # worst-case exposure over each neighbour's residual-offset window
    # (which for SKIP = 3 is bounded by the second lobe at -17.8 dB —
    # slightly more conservative than the annotation; see
    # EXPERIMENTS.md).
    lobe1 = profile.worst_in_range(1.0, 2.0)
    lobe3 = profile.worst_in_range(3.0, 4.0)
    skip2_window = profile.worst_in_range(1.5, 2.5)
    skip3_window = profile.worst_in_range(2.5, 3.5)
    result.check(
        "first side lobe about -13 dB (paper's SKIP=2 annotation)",
        abs(lobe1 - SIDE_LOBE_SKIP2_DB) < 1.0,
    )
    result.check(
        "third side lobe about -21 dB (paper's SKIP=3 annotation)",
        abs(lobe3 - SIDE_LOBE_SKIP3_DB) < 1.0,
    )
    result.check(
        "side lobes decay with distance",
        profile.worst_side_lobe_beyond(16.0)
        < profile.worst_side_lobe_beyond(4.0)
        < profile.worst_side_lobe_beyond(1.1),
    )
    result.check(
        "SKIP=3 worst-case exposure better than SKIP=2's",
        skip3_window < skip2_window - 3.0,
    )
    result.notes.append(
        f"lobe levels: first {lobe1:.1f} dB, third {lobe3:.1f} dB "
        f"(paper annotations {SIDE_LOBE_SKIP2_DB:.0f} / "
        f"{SIDE_LOBE_SKIP3_DB:.0f} dB); window exposures: SKIP=2 "
        f"{skip2_window:.1f} dB, SKIP=3 {skip3_window:.1f} dB"
    )
    return result
