"""Table 1 — NetScatter modulation configurations.

For six (BW, SF) operating points the paper tabulates the tolerable
timing and frequency mismatch, the per-device bitrate and the receive
sensitivity. All four columns are derived quantities; this driver
recomputes them and checks them against the paper's printed values.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.config import TABLE1_CONFIGS
from repro.experiments.common import ExperimentResult

# The paper's printed rows: (BW kHz, SF) -> (dt us, df Hz, bps, dBm).
PAPER_ROWS: Dict[Tuple[int, int], Tuple[float, float, float, float]] = {
    (500, 9): (2.0, 976.0, 976.0, -123.0),
    (500, 8): (2.0, 1953.0, 1953.0, -120.0),
    (250, 8): (4.0, 976.0, 976.0, -123.0),
    (250, 7): (4.0, 1953.0, 1953.0, -120.0),
    (125, 7): (8.0, 976.0, 976.0, -123.0),
    (125, 6): (8.0, 1953.0, 1953.0, -118.0),
}

SENSITIVITY_TOLERANCE_DB = 4.5
"""Sensitivity depends on the assumed noise figure and demodulator SNR
limits; we allow a few dB of modelling slack against the printed column
(the (125 kHz, SF 6) row differs most, see EXPERIMENTS.md)."""


def run() -> ExperimentResult:
    """Recompute Table 1 and compare with the paper's values."""
    result = ExperimentResult(
        experiment_id="table1",
        title="NetScatter modulation configurations",
        columns=[
            "bw_khz",
            "sf",
            "time_tolerance_us",
            "freq_tolerance_hz",
            "bitrate_bps",
            "sensitivity_dbm",
            "paper_sensitivity_dbm",
        ],
    )
    all_rate_match = True
    all_tolerance_match = True
    all_sensitivity_close = True
    for config in TABLE1_CONFIGS:
        key = (int(config.bandwidth_hz / 1e3), config.spreading_factor)
        paper = PAPER_ROWS[key]
        dt_us = config.tolerable_timing_mismatch_s * 1e6
        df_hz = config.tolerable_frequency_mismatch_hz
        rate = config.device_bitrate_bps
        sens = config.sensitivity_dbm
        result.rows.append(
            {
                "bw_khz": key[0],
                "sf": key[1],
                "time_tolerance_us": dt_us,
                "freq_tolerance_hz": df_hz,
                "bitrate_bps": rate,
                "sensitivity_dbm": sens,
                "paper_sensitivity_dbm": paper[3],
            }
        )
        all_tolerance_match &= abs(dt_us - paper[0]) < 0.01
        all_tolerance_match &= abs(df_hz - paper[1]) < 2.0
        all_rate_match &= abs(rate - paper[2]) < 2.0
        all_sensitivity_close &= (
            abs(sens - paper[3]) <= SENSITIVITY_TOLERANCE_DB
        )
    result.check("timing/frequency tolerances match the paper", all_tolerance_match)
    result.check("per-device bitrates match the paper", all_rate_match)
    result.check(
        f"sensitivities within {SENSITIVITY_TOLERANCE_DB} dB of the paper",
        all_sensitivity_close,
    )
    return result


def paper_rows() -> List[Tuple[Tuple[int, int], Tuple[float, float, float, float]]]:
    """The paper's printed table, for tests."""
    return list(PAPER_ROWS.items())
