"""Fig. 14 — frequency offsets and residual FFT-bin variation.

(a) CDF of the per-packet frequency offset of the deployment's tags:
within +/-150 Hz, about 0.15 bins at (500 kHz, SF 9).
(b) 1-CDF of the residual |delta FFT bin| (timing + frequency) for three
configurations; the 500 kHz configuration has the widest bin (in time),
so it tolerates the least jitter and shows the heaviest tail.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.config import NetScatterConfig
from repro.experiments.common import ExperimentResult
from repro.hardware.mcu import McuTimingModel
from repro.hardware.oscillator import tag_oscillator
from repro.utils.conversions import timing_offset_to_bins
from repro.utils.rng import RngLike, child_rng, make_rng
from repro.utils.stats import cdf_at

FIG14B_CONFIGS: Tuple[Tuple[float, int], ...] = (
    (500e3, 9),
    (250e3, 8),
    (125e3, 7),
)


def run_frequency_offsets(
    n_devices: int = 256,
    n_packets: int = 50,
    rng: RngLike = None,
) -> ExperimentResult:
    """Fig. 14a: CDF of tag frequency offsets."""
    generator = make_rng(rng)
    offsets = []
    for device in range(n_devices):
        osc = tag_oscillator()
        osc.calibrate(child_rng(generator, device))
        offsets.extend(osc.offset_series_hz(n_packets, generator).tolist())

    result = ExperimentResult(
        experiment_id="fig14a",
        title=f"CDF of tag frequency offsets ({n_devices} devices)",
        columns=["offset_hz", "cdf"],
    )
    for x in np.linspace(-150.0, 150.0, 25):
        result.rows.append(
            {"offset_hz": float(x), "cdf": cdf_at(offsets, x)}
        )
    max_offset = float(np.max(np.abs(offsets)))
    config = NetScatterConfig()
    max_bins = max_offset * config.n_bins / config.bandwidth_hz
    result.check(
        "offsets bounded by ~150 Hz", max_offset <= 160.0
    )
    result.check(
        "worst offset under 0.2 FFT bins at (500 kHz, SF 9)",
        max_bins < 0.2,
    )
    result.notes.append(
        f"max |offset| = {max_offset:.1f} Hz = {max_bins:.3f} bins"
    )
    return result


def run_residual_bins(
    n_devices: int = 64,
    n_packets: int = 50,
    configs: Sequence[Tuple[float, int]] = FIG14B_CONFIGS,
    rng: RngLike = None,
) -> ExperimentResult:
    """Fig. 14b: 1-CDF of residual |delta FFT bin| per configuration.

    Per packet, the residual combines the MCU turnaround jitter (relative
    to the device's calibrated mean, which preamble synchronisation
    absorbs) and the oscillator offset.
    """
    generator = make_rng(rng)
    timing = McuTimingModel()
    mean_latency = (timing.min_latency_s + timing.max_latency_s) / 2.0

    samples = {}
    for bw, sf in configs:
        config = NetScatterConfig(bandwidth_hz=bw, spreading_factor=sf)
        params = config.chirp_params
        values = []
        for device in range(n_devices):
            osc = tag_oscillator()
            osc.calibrate(child_rng(generator, device))
            for _ in range(n_packets):
                dt = timing.sample_latency_s(generator) - mean_latency
                dbin = timing_offset_to_bins(dt, bw) + osc.offset_bins(
                    params, generator
                )
                values.append(abs(dbin))
        samples[(bw, sf)] = np.asarray(values)

    result = ExperimentResult(
        experiment_id="fig14b",
        title="1-CDF of residual |delta FFT bin| (timing + frequency)",
        columns=["delta_bin"]
        + [f"bw{int(bw/1e3)}_sf{sf}" for bw, sf in configs],
    )
    for x in np.linspace(0.0, 2.0, 21):
        row = {"delta_bin": float(x)}
        for bw, sf in configs:
            row[f"bw{int(bw/1e3)}_sf{sf}"] = 1.0 - cdf_at(
                samples[(bw, sf)], x
            )
        result.rows.append(row)

    tail_500 = 1.0 - cdf_at(samples[(500e3, 9)], 1.0)
    tail_125 = 1.0 - cdf_at(samples[(125e3, 7)], 1.0)
    result.check(
        "wider-band config has the heavier residual tail",
        tail_500 >= tail_125,
    )
    result.check(
        "most packets stay within half a bin at 500 kHz",
        cdf_at(samples[(500e3, 9)], 0.5) > 0.9,
    )
    result.check(
        "residuals beyond one bin are rare at 500 kHz (< 3%)",
        tail_500 < 0.03,
    )
    result.notes.append(
        f"P(|dbin| > 1) = {tail_500:.4f} at 500 kHz/SF9, "
        f"{tail_125:.4f} at 125 kHz/SF7"
    )
    return result


def run(rng: RngLike = None, **kwargs) -> ExperimentResult:
    """Combined driver (Fig. 14b is the headline panel)."""
    return run_residual_bins(rng=rng, **kwargs)
