"""Shared scaffolding for the figure/table reproduction drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.reports import format_table
from repro.errors import ReproError


@dataclass
class ExperimentResult:
    """Uniform result record for every experiment driver.

    Attributes
    ----------
    experiment_id:
        Paper anchor, e.g. ``"fig12"`` or ``"table1"``.
    title:
        Human-readable description.
    rows:
        The series/table the figure plots, one dict per row.
    columns:
        Column order for reporting.
    checks:
        Named shape assertions (``name -> bool``) the experiment
        validated against the paper's qualitative claims.
    notes:
        Free-form commentary (substitutions, deviations).
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    columns: List[str] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def report(self, max_rows: Optional[int] = None) -> str:
        """Render the result as the text block the bench harness prints."""
        if not self.rows:
            raise ReproError(f"{self.experiment_id} produced no rows")
        rows = self.rows
        if max_rows is not None and len(rows) > max_rows:
            step = max(1, len(rows) // max_rows)
            rows = rows[::step]
        lines = [
            format_table(
                rows, self.columns, title=f"[{self.experiment_id}] {self.title}"
            )
        ]
        if self.checks:
            lines.append("shape checks:")
            for name, passed in self.checks.items():
                lines.append(f"  {'PASS' if passed else 'FAIL'}  {name}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def all_checks_pass(self) -> bool:
        """True when every recorded shape check held."""
        return all(self.checks.values())

    def check(self, name: str, passed: bool) -> None:
        """Record one shape assertion."""
        self.checks[name] = bool(passed)

    def column(self, key: str) -> List[object]:
        """Extract one column across rows."""
        if not self.rows or key not in self.rows[0]:
            raise ReproError(f"column {key!r} not present")
        return [row[key] for row in self.rows]


def geometric_sweep(start: int, stop: int, factor: float = 2.0) -> List[int]:
    """Geometric integer sweep helper for scaling experiments."""
    if start < 1 or stop < start or factor <= 1.0:
        raise ReproError("invalid sweep parameters")
    values = []
    current = float(start)
    while current <= stop:
        value = int(round(current))
        if not values or value != values[-1]:
            values.append(value)
        current *= factor
    if values[-1] != stop:
        values.append(stop)
    return values
