"""Fig. 9 — CDF of SNR variation of backscatter devices over 30 minutes.

The paper records eight office devices for 30 minutes with people walking
around and plots the CDF of each device's SNR deviation; variations stay
within roughly +/-5 dB. We reproduce it with the AR(1) fading process.
"""

from __future__ import annotations

import numpy as np

from repro.channel.fading import FadingProcess, snr_variance_samples
from repro.experiments.common import ExperimentResult
from repro.utils.rng import RngLike, child_rng, make_rng
from repro.utils.stats import cdf_at


def run(
    n_devices: int = 8,
    duration_s: float = 1800.0,
    dt_s: float = 1.0,
    window_s: float = 300.0,
    fading_std_db: float = 1.5,
    rng: RngLike = None,
) -> ExperimentResult:
    """Simulate the 30-minute SNR tracks and their deviation CDFs."""
    generator = make_rng(rng)
    deviations = []
    for device in range(n_devices):
        process = FadingProcess(mean_snr_db=0.0, std_db=fading_std_db)
        process.reset(child_rng(generator, device))
        deviations.append(
            snr_variance_samples(
                process,
                duration_s,
                dt_s,
                window_s,
                child_rng(generator, 1000 + device),
            )
        )

    result = ExperimentResult(
        experiment_id="fig09",
        title=f"CDF of SNR deviation over {duration_s/60:.0f} min "
        f"({n_devices} devices, office fading)",
        columns=["deviation_db"]
        + [f"cdf_dev{d+1}" for d in range(n_devices)],
    )
    grid = np.linspace(-5.0, 5.0, 21)
    for x in grid:
        row = {"deviation_db": float(x)}
        for d in range(n_devices):
            row[f"cdf_dev{d+1}"] = cdf_at(deviations[d], x)
        result.rows.append(row)

    worst = max(float(np.max(np.abs(d))) for d in deviations)
    frac_within_5db = min(
        float(np.mean(np.abs(d) <= 5.0)) for d in deviations
    )
    result.check(
        "SNR deviations essentially confined to +/-5 dB",
        frac_within_5db > 0.99,
    )
    result.check(
        "deviations are not degenerate (devices do fade)",
        worst > 1.0,
    )
    result.notes.append(
        f"worst observed |deviation| = {worst:.2f} dB; "
        f"min fraction within 5 dB = {frac_within_5db:.4f}"
    )
    return result
