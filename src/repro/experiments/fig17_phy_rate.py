"""Fig. 17 — network PHY rate vs number of concurrent devices.

Four schemes over the 256-device office deployment:

* LoRa backscatter without rate adaptation (fixed 8.7 kbps, TDMA),
* LoRa backscatter with ideal rate adaptation (SX1276 SNR table, TDMA),
* NetScatter ideal (every device at BW / 2^SF, perfect delivery),
* NetScatter measured (round simulation with jitter, CFO, near-far).

The headline shape: NetScatter scales ~linearly to ~250 kbps at 256
devices (with visible variance as SKIP tightens to 2), while both TDMA
baselines stay flat; the paper reports 26.2x / 6.8x gains at 256.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.lora_backscatter import LoRaBackscatterNetwork
from repro.campaign.presets import (
    DEFAULT_DEVICE_COUNTS,
    SWEEP_CONFIG,
    fig17_campaign,
)
from repro.campaign.runner import run_campaign_sweep
from repro.channel.deployment import Deployment, paper_deployment
from repro.core.config import NetScatterConfig
from repro.experiments.common import ExperimentResult
from repro.protocol.network import sweep_device_counts
from repro.utils.rng import RngLike, make_rng

PAPER_GAIN_OVER_FIXED = 26.2
PAPER_GAIN_OVER_RA = 6.8


def run(
    deployment: Optional[Deployment] = None,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    n_rounds: int = 3,
    rng: RngLike = None,
    engine: str = "auto",
    workers: Optional[int] = None,
    float32_min_devices: Optional[int] = None,
    store=None,
) -> ExperimentResult:
    """Sweep device counts and tabulate all four schemes' PHY rates.

    The NetScatter points execute through the campaign layer
    (:func:`repro.campaign.runner.run_campaign_sweep` over
    :func:`repro.campaign.presets.fig17_campaign`) under the
    occupancy-adaptive ``"auto"`` engine by default — the calibrated
    backend planner keeps small counts on the analytic
    Dirichlet-kernel path and moves the near-full-occupancy points
    (the 224/256-device tail, where ``D ~ N/2``) onto the padded FFT,
    with bit-identical decisions. Pass a ``store``
    (:class:`repro.campaign.store.CampaignStore` or a path) to persist
    every point and reuse completed ones across runs *and figures* —
    Fig. 18's sweep shares these exact points. Campaign metrics are
    bit-identical to the direct :func:`sweep_device_counts` path
    (pinned by ``tests/test_campaign.py``), which still serves
    explicitly-passed custom deployments (those are not
    content-addressable, so ``store`` is ignored for them).
    Pass ``engine="analytic"`` to pin the closed-form path, or
    ``engine="time"`` with ``workers=`` for the reference time-domain
    path in a process pool.
    """
    generator = make_rng(rng)
    config = NetScatterConfig(**SWEEP_CONFIG)
    if deployment is None:
        spec = fig17_campaign(
            rng=generator,
            device_counts=device_counts,
            n_rounds=n_rounds,
            engine=engine,
            float32_min_devices=float32_min_devices,
        )
        deployment = paper_deployment(rng=spec.deployment["seed"])
        sweep = run_campaign_sweep(spec, store=store, workers=workers)
    else:
        sweep = sweep_device_counts(
            deployment,
            device_counts,
            config=config,
            n_rounds=n_rounds,
            rng=generator,
            engine=engine,
            workers=workers,
            float32_min_devices=float32_min_devices,
        )

    result = ExperimentResult(
        experiment_id="fig17",
        title="Network PHY rate vs concurrent devices (kbps)",
        columns=[
            "n_devices",
            "lora_fixed_kbps",
            "lora_ra_kbps",
            "netscatter_ideal_kbps",
            "netscatter_kbps",
        ],
    )
    netscatter_rates = []
    for count, metrics in zip(device_counts, sweep):
        snrs = deployment.subset(count).snrs_db().tolist()
        fixed = LoRaBackscatterNetwork(snrs, rate_adaptation=False)
        adaptive = LoRaBackscatterNetwork(snrs, rate_adaptation=True)
        ideal = count * config.device_bitrate_bps
        netscatter_rates.append(metrics.phy_rate_bps)
        result.rows.append(
            {
                "n_devices": count,
                "lora_fixed_kbps": fixed.network_phy_rate_bps() / 1e3,
                "lora_ra_kbps": adaptive.network_phy_rate_bps() / 1e3,
                "netscatter_ideal_kbps": ideal / 1e3,
                "netscatter_kbps": metrics.phy_rate_bps / 1e3,
            }
        )

    last = result.rows[-1]
    gain_fixed = last["netscatter_kbps"] / last["lora_fixed_kbps"]
    gain_ra = last["netscatter_kbps"] / last["lora_ra_kbps"]
    rates = np.array(netscatter_rates)
    counts = np.array(list(device_counts), dtype=float)
    result.check(
        "NetScatter PHY rate scales ~linearly with device count "
        "(r > 0.99)",
        bool(np.corrcoef(counts, rates)[0, 1] > 0.99),
    )
    result.check(
        "LoRa baselines stay flat while NetScatter grows",
        last["netscatter_kbps"] > 5.0 * last["lora_ra_kbps"],
    )
    result.check(
        f"gain over fixed-rate LoRa near the paper's "
        f"{PAPER_GAIN_OVER_FIXED}x (within 2x)",
        PAPER_GAIN_OVER_FIXED / 2.0
        <= gain_fixed
        <= PAPER_GAIN_OVER_FIXED * 2.0,
    )
    result.check(
        f"gain over rate-adapted LoRa near the paper's "
        f"{PAPER_GAIN_OVER_RA}x (within 2x)",
        PAPER_GAIN_OVER_RA / 2.0 <= gain_ra <= PAPER_GAIN_OVER_RA * 2.0,
    )
    result.notes.append(
        f"at 256 devices: {gain_fixed:.1f}x over fixed "
        f"(paper {PAPER_GAIN_OVER_FIXED}x), {gain_ra:.1f}x over RA "
        f"(paper {PAPER_GAIN_OVER_RA}x)"
    )
    return result
