"""Backscatter tag hardware models.

These models replace the paper's PCB prototype: the impedance switch
network that realises multi-level transmit power (Fig. 7), the envelope
detector used as the downlink receiver and RSSI sensor, the crystal
oscillator (frequency offsets), the MCU/FPGA chain (timing jitter), the
IC power budget, and the composed :class:`BackscatterDevice`.
"""

from repro.hardware.chirp_generator import ChirpGenerator
from repro.hardware.device import BackscatterDevice, DeviceState
from repro.hardware.envelope_detector import EnvelopeDetector
from repro.hardware.impedance import (
    reflection_coefficient,
    backscatter_power_gain_db,
    gain_sweep,
)
from repro.hardware.mcu import McuTimingModel
from repro.hardware.oscillator import CrystalOscillator
from repro.hardware.power_model import IcPowerBudget
from repro.hardware.switch_network import SwitchNetwork, PowerLevel

__all__ = [
    "ChirpGenerator",
    "BackscatterDevice",
    "DeviceState",
    "EnvelopeDetector",
    "reflection_coefficient",
    "backscatter_power_gain_db",
    "gain_sweep",
    "McuTimingModel",
    "CrystalOscillator",
    "IcPowerBudget",
    "SwitchNetwork",
    "PowerLevel",
]
