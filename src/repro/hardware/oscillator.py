"""Crystal oscillator model: per-device frequency offsets and drift.

Section 2.2's key quantitative argument: a tag synthesises only a few-MHz
baseband, so the same crystal ppm error produces ~90x less absolute
frequency offset than an active 900 MHz radio. This model carries a fixed
per-part offset (crystal cut error) plus a slow random walk (temperature
drift), and reports offsets both in hertz and FFT bins. It is the data
source behind Fig. 4 and Fig. 14a.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HardwareModelError
from repro.phy.chirp import ChirpParams
from repro.utils.conversions import freq_offset_to_bins
from repro.utils.rng import RngLike, make_rng


@dataclass
class CrystalOscillator:
    """A crystal with a fixed cut error and slow drift.

    Attributes
    ----------
    nominal_freq_hz:
        The synthesised output frequency (3 MHz baseband for a tag,
        900 MHz for an active radio).
    tolerance_ppm:
        Cut-error tolerance band; the per-part offset is drawn uniformly
        inside it.
    drift_ppm_std:
        Standard deviation of the slow per-measurement drift (temperature
        and ageing), in ppm.
    """

    nominal_freq_hz: float
    tolerance_ppm: float = 50.0
    drift_ppm_std: float = 2.0
    _cut_error_ppm: float = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nominal_freq_hz <= 0:
            raise HardwareModelError("nominal frequency must be positive")
        if self.tolerance_ppm < 0 or self.drift_ppm_std < 0:
            raise HardwareModelError("ppm figures must be non-negative")

    def calibrate(self, rng: RngLike = None) -> None:
        """Draw the fixed per-part cut error."""
        generator = make_rng(rng)
        self.calibrate_from_unit(generator.uniform(-1.0, 1.0))

    def calibrate_from_unit(self, draw: float) -> None:
        """Set the cut error from a pre-drawn uniform(-1, 1) variate.

        The seam shared by :meth:`calibrate` and the batched
        :func:`calibrate_population`, so both paths apply the same
        tolerance scaling (and any future validation) in one place.
        """
        if not -1.0 <= draw <= 1.0:
            raise HardwareModelError("unit draw must lie in [-1, 1]")
        self._cut_error_ppm = float(draw * self.tolerance_ppm)

    @property
    def cut_error_ppm(self) -> float:
        if self._cut_error_ppm is None:
            raise HardwareModelError(
                "oscillator not calibrated; call calibrate() first"
            )
        return self._cut_error_ppm

    def offset_hz(self, rng: RngLike = None) -> float:
        """One measurement's frequency offset: cut error + drift (Hz)."""
        generator = make_rng(rng)
        drift = (
            generator.normal(scale=self.drift_ppm_std)
            if self.drift_ppm_std > 0
            else 0.0
        )
        return (self.cut_error_ppm + drift) * 1e-6 * self.nominal_freq_hz

    def offset_bins(self, params: ChirpParams, rng: RngLike = None) -> float:
        """One measurement's offset expressed in FFT bins."""
        return freq_offset_to_bins(
            self.offset_hz(rng), params.bandwidth_hz, params.spreading_factor
        )

    def offset_series_hz(self, n: int, rng: RngLike = None) -> np.ndarray:
        """``n`` repeated offset measurements (Fig. 14a's raw data)."""
        if n < 1:
            raise HardwareModelError("need at least one measurement")
        generator = make_rng(rng)
        return np.array([self.offset_hz(generator) for _ in range(n)])


def calibrate_population(oscillators, rng: RngLike = None) -> None:
    """Draw every oscillator's fixed cut error in one batched call.

    Identical distribution to calling :meth:`CrystalOscillator.calibrate`
    per part (uniform within each part's tolerance band), but a single
    ``Generator.uniform`` draw serves the whole population — the network
    simulator calibrates hundreds of tags per sweep point.
    """
    oscillators = list(oscillators)
    if not oscillators:
        return
    generator = make_rng(rng)
    draws = generator.uniform(-1.0, 1.0, size=len(oscillators))
    for osc, draw in zip(oscillators, draws):
        osc.calibrate_from_unit(draw)


def tag_oscillator(
    tolerance_ppm: float = 20.0, drift_ppm_std: float = 2.0
) -> CrystalOscillator:
    """A backscatter tag's oscillator (3 MHz baseband subcarrier).

    20 ppm at 3 MHz spans +/-60 Hz of cut error with a few-Hz drift,
    matching the paper's measured +/-150 Hz envelope (Fig. 14a) with
    margin for the drift term.
    """
    from repro.constants import BACKSCATTER_BASEBAND_FREQ_HZ

    return CrystalOscillator(
        nominal_freq_hz=BACKSCATTER_BASEBAND_FREQ_HZ,
        tolerance_ppm=tolerance_ppm,
        drift_ppm_std=drift_ppm_std,
    )


def radio_oscillator(
    tolerance_ppm: float = 20.0, drift_ppm_std: float = 2.0
) -> CrystalOscillator:
    """An active LoRa radio's oscillator (900 MHz synthesis).

    The same crystal quality at 900 MHz yields offsets of many kHz —
    multiple FFT bins — which is what lets Choir tell radios apart and
    why the trick fails for backscatter (Fig. 4).
    """
    from repro.constants import RADIO_OSC_FREQ_HZ

    return CrystalOscillator(
        nominal_freq_hz=RADIO_OSC_FREQ_HZ,
        tolerance_ppm=tolerance_ppm,
        drift_ppm_std=drift_ppm_std,
    )
