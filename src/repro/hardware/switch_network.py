"""Multi-level impedance switch network (Fig. 7b).

The paper's tag cascades ADG904 RF switches so the baseband can pick,
per packet, which ``Z0`` the antenna toggles against — realising the three
transmit power gains 0 / -4 / -10 dB used by the fine-grained power
adjustment. This module models that network: a set of discrete power
levels, each backed by a concrete load impedance, with selection logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import POWER_GAIN_LEVELS_DB
from repro.errors import HardwareModelError
from repro.hardware.impedance import (
    backscatter_power_gain_db,
    solve_z0_for_gain_db,
)


@dataclass(frozen=True)
class PowerLevel:
    """One selectable transmit power level of the switch network."""

    index: int
    gain_db: float
    z0_ohm: float

    def __str__(self) -> str:
        return f"level {self.index}: {self.gain_db:+.1f} dB (Z0={self.z0_ohm:.1f} ohm)"


class SwitchNetwork:
    """Discrete-power backscatter switch network.

    Parameters
    ----------
    gains_db:
        The power gains the network must realise, in descending order.
        Defaults to the paper's (0, -4, -10) dB.

    The constructor solves for the ``Z0`` resistor realising each gain
    (against an open ``Z1``), mirroring how the paper's three-resistor
    NMOS network is designed.
    """

    def __init__(self, gains_db: Sequence[float] = POWER_GAIN_LEVELS_DB) -> None:
        if not gains_db:
            raise HardwareModelError("need at least one power level")
        ordered = sorted((float(g) for g in gains_db), reverse=True)
        if ordered[0] > 0.0:
            raise HardwareModelError("power gains cannot exceed 0 dB")
        if len(set(ordered)) != len(ordered):
            raise HardwareModelError("power levels must be distinct")
        self._levels: List[PowerLevel] = []
        for index, gain in enumerate(ordered):
            z0 = solve_z0_for_gain_db(gain)
            self._levels.append(
                PowerLevel(index=index, gain_db=gain, z0_ohm=z0)
            )
        self._selected = 0

    @property
    def levels(self) -> List[PowerLevel]:
        """All levels, strongest first."""
        return list(self._levels)

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    @property
    def selected(self) -> PowerLevel:
        """The currently selected level."""
        return self._levels[self._selected]

    @property
    def gain_db(self) -> float:
        """Gain of the currently selected level."""
        return self.selected.gain_db

    def select(self, index: int) -> PowerLevel:
        """Select a level by index (0 = strongest)."""
        if not 0 <= index < self.n_levels:
            raise HardwareModelError(
                f"level index must be in [0, {self.n_levels}), got {index}"
            )
        self._selected = index
        return self.selected

    def select_gain_db(self, gain_db: float, tol_db: float = 0.5) -> PowerLevel:
        """Select the level closest to ``gain_db`` (within ``tol_db``)."""
        best = min(self._levels, key=lambda lv: abs(lv.gain_db - gain_db))
        if abs(best.gain_db - gain_db) > tol_db:
            raise HardwareModelError(
                f"no level within {tol_db} dB of {gain_db} dB"
            )
        return self.select(best.index)

    def step_down(self) -> PowerLevel:
        """Move one level weaker, clamping at the weakest."""
        self._selected = min(self._selected + 1, self.n_levels - 1)
        return self.selected

    def step_up(self) -> PowerLevel:
        """Move one level stronger, clamping at the strongest."""
        self._selected = max(self._selected - 1, 0)
        return self.selected

    def can_step_down(self) -> bool:
        return self._selected < self.n_levels - 1

    def can_step_up(self) -> bool:
        return self._selected > 0

    def middle_index(self) -> int:
        """Index of the middle level (association default for strong tags)."""
        return self.n_levels // 2

    def verify_realisation(self, tol_db: float = 0.05) -> bool:
        """Check each solved ``Z0`` actually realises its nominal gain."""
        for level in self._levels:
            realised = backscatter_power_gain_db(level.z0_ohm, None)
            if abs(realised - level.gain_db) > tol_db:
                return False
        return True
