"""MCU / FPGA timing model: the hardware-delay jitter source.

Section 3.2.1: the dominant synchronisation error is the variable latency
between the envelope detector hearing the query and the FPGA starting the
chirp — up to ~3.5 us on the paper's MSP430 + IGLOO nano chain, more than
one FFT bin at 500 kHz. This model decomposes the latency into its stages
so per-packet draws have realistic structure, and exposes the bin-shift
the decoder experiences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import HW_DELAY_JITTER_MAX_S
from repro.errors import HardwareModelError
from repro.phy.chirp import ChirpParams
from repro.utils.conversions import timing_offset_to_bins
from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class McuTimingModel:
    """Per-packet turnaround latency of the tag's digital chain.

    The latency is the sum of three stages, each with a fixed part and a
    uniform jitter part (interrupt latencies and clock-domain crossings
    are bounded-uniform, not Gaussian):

    * envelope detector settling + comparator,
    * MCU interrupt entry and query parsing,
    * FPGA chirp-generator start (clock-domain crossing).

    An occasional "glitch" (a missed interrupt slot / flash wait state,
    ``glitch_probability`` per packet) adds up to ``glitch_extra_s`` more,
    which produces the heavy tail of Fig. 14b and the paper's quoted
    3.5 us worst case; ordinary packets stay within ~0.5 FFT bins of the
    mean at 500 kHz, matching the measured residual distribution.
    """

    detector_fixed_s: float = 0.3e-6
    detector_jitter_s: float = 0.2e-6
    mcu_fixed_s: float = 0.5e-6
    mcu_jitter_s: float = 0.6e-6
    fpga_fixed_s: float = 0.2e-6
    fpga_jitter_s: float = 0.3e-6
    glitch_probability: float = 0.01
    glitch_extra_s: float = 1.4e-6

    def __post_init__(self) -> None:
        for name in (
            "detector_fixed_s",
            "detector_jitter_s",
            "mcu_fixed_s",
            "mcu_jitter_s",
            "fpga_fixed_s",
            "fpga_jitter_s",
        ):
            if getattr(self, name) < 0:
                raise HardwareModelError(f"{name} must be non-negative")

    @property
    def min_latency_s(self) -> float:
        """Smallest possible turnaround latency."""
        return self.detector_fixed_s + self.mcu_fixed_s + self.fpga_fixed_s

    @property
    def max_latency_s(self) -> float:
        """Largest possible turnaround latency (paper: ~3.5 us total)."""
        return (
            self.min_latency_s
            + self.detector_jitter_s
            + self.mcu_jitter_s
            + self.fpga_jitter_s
            + (self.glitch_extra_s if self.glitch_probability > 0 else 0.0)
        )

    @property
    def jitter_span_s(self) -> float:
        """Packet-to-packet variation span (max - min)."""
        return self.max_latency_s - self.min_latency_s

    def sample_latency_s(self, rng: RngLike = None) -> float:
        """Draw one per-packet turnaround latency (seconds)."""
        generator = make_rng(rng)
        latency = self.min_latency_s
        for jitter in (
            self.detector_jitter_s,
            self.mcu_jitter_s,
            self.fpga_jitter_s,
        ):
            if jitter > 0:
                latency += float(generator.uniform(0.0, jitter))
        if self.glitch_probability > 0 and (
            generator.uniform() < self.glitch_probability
        ):
            latency += float(generator.uniform(0.0, self.glitch_extra_s))
        return latency

    def sample_bin_offset(
        self, params: ChirpParams, rng: RngLike = None
    ) -> float:
        """Per-packet FFT-bin shift caused by the latency draw."""
        return timing_offset_to_bins(
            self.sample_latency_s(rng), params.bandwidth_hz
        )

    def jitter_bins(self, params: ChirpParams) -> float:
        """Worst-case packet-to-packet bin wobble at this bandwidth.

        This (not the absolute latency) is what SKIP must absorb: the AP
        learns each device's *mean* offset from the preamble, but the
        per-packet wobble around it cannot be calibrated out.
        """
        return timing_offset_to_bins(self.jitter_span_s, params.bandwidth_hz)

    def sample_latencies_s(self, n, rng: RngLike = None) -> np.ndarray:
        """Independent per-packet latency draws, vectorised.

        ``n`` is a count or a shape tuple (the network simulator draws a
        whole ``(rounds, devices)`` batch at once). The stage jitters and
        the glitch tail are drawn as whole arrays instead of a Python
        loop of per-stage calls — same distribution, two orders of
        magnitude fewer ``Generator`` invocations.
        """
        shape = (int(n),) if np.isscalar(n) else tuple(int(s) for s in n)
        if any(s < 1 for s in shape) or not shape:
            raise HardwareModelError("need at least one draw")
        generator = make_rng(rng)
        latency = np.full(shape, self.min_latency_s)
        for jitter in (
            self.detector_jitter_s,
            self.mcu_jitter_s,
            self.fpga_jitter_s,
        ):
            if jitter > 0:
                latency += generator.uniform(0.0, jitter, size=shape)
        if self.glitch_probability > 0:
            glitched = generator.uniform(size=shape) < self.glitch_probability
            latency += np.where(
                glitched,
                generator.uniform(0.0, self.glitch_extra_s, size=shape),
                0.0,
            )
        return latency


def paper_timing_model() -> McuTimingModel:
    """The default model, tuned to the paper's ~3.5 us measured maximum."""
    model = McuTimingModel()
    assert model.max_latency_s <= HW_DELAY_JITTER_MAX_S + 1e-9
    return model
