"""Digital chirp generator: the tag's FPGA/ASIC baseband block.

Section 4.1: the tag synthesises its chirp with a phase-accumulator
driving 1-bit (square-wave) I/Q outputs into the switch network — not a
DAC. This model reproduces that chain:

* an ``acc_bits``-wide phase accumulator stepped by a quadratically
  increasing frequency word (the chirp), including the cyclic-shift
  start offset and the 3 MHz self-interference offset;
* hard-limited (sign) I/Q outputs — the square wave physically toggling
  the antenna switch;
* the square wave's odd harmonics (3rd at -9.5 dB, 5th at -14 dB),
  which the paper's cascaded-switch network is designed to cancel.

The receiver only sees the fundamental (the harmonics fall out of band
or are cancelled), which is why the rest of the library models the
transmitted chirp as the ideal complex exponential; this module exists
to *verify* that idealisation and to quantify the quantisation floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareModelError
from repro.phy.chirp import ChirpParams, cyclic_shifted_upchirp


@dataclass(frozen=True)
class ChirpGenerator:
    """Phase-accumulator chirp synthesis with 1-bit I/Q output.

    Attributes
    ----------
    params:
        Chirp bandwidth / spreading factor to synthesise.
    acc_bits:
        Phase accumulator width; 16-24 bits are typical for tiny FPGAs.
    clock_multiplier:
        Accumulator clock as a multiple of the chirp bandwidth (the
        IGLOO nano runs well above the 500 kHz baseband).
    """

    params: ChirpParams
    acc_bits: int = 20
    clock_multiplier: int = 8

    def __post_init__(self) -> None:
        if not 4 <= self.acc_bits <= 48:
            raise HardwareModelError("acc_bits must be in [4, 48]")
        if self.clock_multiplier < 1:
            raise HardwareModelError("clock multiplier must be >= 1")

    @property
    def clock_hz(self) -> float:
        return self.params.bandwidth_hz * self.clock_multiplier

    def phase_track(self, shift: int = 0) -> np.ndarray:
        """Accumulated phase (radians) over one symbol at the clock rate.

        The accumulator integrates a linearly increasing frequency word;
        a cyclic shift enters as the starting frequency (mod BW), which
        is exactly how the paper's Verilog "generates the assigned cyclic
        shift with required frequency offset".
        """
        n_clock = self.params.n_samples * self.clock_multiplier
        modulus = 2**self.acc_bits
        # Instantaneous frequency in cycles/clock, quantised to the
        # accumulator grid each step.
        t = np.arange(n_clock)
        n = self.params.n_samples
        freq_cycles = (
            ((t / self.clock_multiplier + shift) % n) / n
        ) / self.clock_multiplier
        words = np.round(freq_cycles * modulus).astype(np.int64)
        acc = np.cumsum(words) % modulus
        return 2.0 * np.pi * acc / modulus

    def square_wave_iq(self, shift: int = 0) -> np.ndarray:
        """The 1-bit I/Q waveform the switch network actually emits."""
        phase = self.phase_track(shift)
        return np.sign(np.cos(phase)) + 1j * np.sign(np.sin(phase))

    def fundamental(self, shift: int = 0) -> np.ndarray:
        """Critical-rate fundamental of the square wave.

        Decimates the clock-rate square wave back to the symbol grid;
        the 4/pi fundamental amplitude is normalised out so the result
        is directly comparable to the ideal chirp.
        """
        square = self.square_wave_iq(shift)
        critical = square[:: self.clock_multiplier]
        return critical * (np.pi / 4.0) / np.sqrt(2.0)

    def fidelity_db(self, shift: int = 0) -> float:
        """Correlation of the synthesised chirp against the ideal one.

        Returns the power ratio (dB) of the matched projection onto the
        ideal cyclic-shifted chirp — the quantisation + harmonic floor.
        0 dB would be a perfect chirp; the 1-bit square wave correlates
        at about -1 dB at the fundamental (the 4/pi harvest minus
        harmonic leakage).
        """
        synthesised = self.fundamental(shift)
        ideal = np.asarray(cyclic_shifted_upchirp(self.params, shift))
        projection = np.vdot(ideal, synthesised) / np.sqrt(
            np.vdot(ideal, ideal).real
            * np.vdot(synthesised, synthesised).real
        )
        magnitude = abs(projection)
        if magnitude <= 0:
            return float("-inf")
        return float(20.0 * np.log10(magnitude))

    def harmonic_levels_db(self, n_harmonics: int = 5) -> dict:
        """Relative levels of the square wave's odd harmonics.

        An ideal square wave carries its k-th odd harmonic at
        ``20*log10(1/k)`` relative to the fundamental (-9.5 dB at k=3,
        -14 dB at k=5); these are what the cascaded ADG904 network in
        the paper cancels before the antenna.
        """
        levels = {}
        for k in range(3, 2 * n_harmonics + 2, 2):
            levels[k] = float(20.0 * np.log10(1.0 / k))
        return levels


def decode_through_generator(
    params: ChirpParams, shift: int, acc_bits: int = 20
) -> int:
    """End-to-end check: decode a generator-synthesised chirp.

    Returns the classic-CSS decision on the square-wave fundamental;
    equals ``shift`` when the quantisation floor is adequate — the test
    that justifies modelling tags as ideal chirp sources elsewhere.
    """
    from repro.phy.demodulation import Demodulator

    generator = ChirpGenerator(params=params, acc_bits=acc_bits)
    return Demodulator(params).classic_decode(generator.fundamental(shift))
