"""The composed backscatter device (tag).

Wires the hardware blocks together into a behavioural tag model:
envelope detector (query RX + RSSI), crystal oscillator (CFO), MCU/FPGA
chain (turnaround jitter), switch network (discrete TX power), and the
ON-OFF keyed CSS transmitter. The device also hosts the tag-side half of
the protocol state: association status, assigned cyclic shift, baseline
RSSI and the fine-grained power-adjustment rule of Section 3.2.3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import HardwareModelError, ProtocolError
from repro.hardware.envelope_detector import EnvelopeDetector
from repro.hardware.mcu import McuTimingModel
from repro.hardware.oscillator import CrystalOscillator, tag_oscillator
from repro.hardware.switch_network import SwitchNetwork
from repro.phy.chirp import ChirpParams
from repro.phy.onoff import OnOffKeyedTransmitter
from repro.utils.rng import RngLike, make_rng


class DeviceState(enum.Enum):
    """Tag protocol state."""

    UNASSOCIATED = "unassociated"
    ASSOCIATING = "associating"
    ASSOCIATED = "associated"


@dataclass(frozen=True)
class TransmitImpairments:
    """Impairments stamped onto one transmission, for the channel to apply."""

    hardware_delay_s: float
    cfo_hz: float
    power_gain_db: float


class BackscatterDevice:
    """A behavioural NetScatter tag.

    Parameters
    ----------
    device_id:
        Stable identifier (the 8-bit network ID once associated).
    params:
        Network-wide chirp configuration.
    rssi_low_threshold_dbm:
        Below this query RSSI the tag associates at maximum power;
        above it, at the middle level (leaving adjustment headroom both
        ways, per Section 3.2.3).
    """

    MAX_SKIPPED_BEFORE_REASSOCIATION = 2

    def __init__(
        self,
        device_id: int,
        params: ChirpParams,
        oscillator: Optional[CrystalOscillator] = None,
        timing: Optional[McuTimingModel] = None,
        switch: Optional[SwitchNetwork] = None,
        detector: Optional[EnvelopeDetector] = None,
        rssi_low_threshold_dbm: float = -40.0,
        rng: RngLike = None,
    ) -> None:
        if device_id < 0:
            raise HardwareModelError("device_id must be non-negative")
        self._rng = make_rng(rng)
        self.device_id = int(device_id)
        self.params = params
        self.oscillator = oscillator or tag_oscillator()
        if self.oscillator._cut_error_ppm is None:
            self.oscillator.calibrate(self._rng)
        self.timing = timing or McuTimingModel()
        self.switch = switch or SwitchNetwork()
        self.detector = detector or EnvelopeDetector()
        self.rssi_low_threshold_dbm = float(rssi_low_threshold_dbm)

        self.state = DeviceState.UNASSOCIATED
        self.assigned_shift: Optional[int] = None
        self.baseline_rssi_dbm: Optional[float] = None
        self.skipped_rounds = 0
        self._transmitter: Optional[OnOffKeyedTransmitter] = None

    # ------------------------------------------------------------------ #
    # association-side behaviour
    # ------------------------------------------------------------------ #

    def hear_query(self, true_rssi_dbm: float) -> Optional[float]:
        """Measure the query RSSI; ``None`` if below detector sensitivity."""
        return self.detector.measure_rssi_dbm(true_rssi_dbm, self._rng)

    def receive_query_waveform(
        self,
        envelope: np.ndarray,
        samples_per_bit: int,
        true_rssi_dbm: float,
        n_reassignment_devices: Optional[int] = None,
    ):
        """Demodulate and parse an ASK query waveform end-to-end.

        The downlink path the MCU runs: envelope detector -> bit slicer
        -> query parser. Returns ``(QueryMessage, rssi_dbm)``, or
        ``(None, None)`` when the query is below sensitivity.
        """
        from repro.protocol.messages import parse_query_bits

        rssi = self.hear_query(true_rssi_dbm)
        if rssi is None:
            return None, None
        bits = self.detector.demodulate_ask(envelope, samples_per_bit)
        query = parse_query_bits(bits, n_reassignment_devices)
        return query, rssi

    def choose_association_power(self, query_rssi_dbm: float) -> float:
        """Initial power level for the association request.

        Low RSSI (far tag) -> maximum power; otherwise the middle level so
        the tag can later adjust both up and down.
        """
        if query_rssi_dbm < self.rssi_low_threshold_dbm:
            self.switch.select(0)
        else:
            self.switch.select(self.switch.middle_index())
        return self.switch.gain_db

    def begin_association(self, query_rssi_dbm: float) -> float:
        """Enter the associating state and pick the request power."""
        if self.state == DeviceState.ASSOCIATED:
            raise ProtocolError("device is already associated")
        self.state = DeviceState.ASSOCIATING
        return self.choose_association_power(query_rssi_dbm)

    def complete_association(
        self, assigned_shift: int, query_rssi_dbm: float
    ) -> None:
        """Accept the AP's shift assignment; record the RSSI baseline."""
        if not 0 <= assigned_shift < self.params.n_shifts:
            raise ProtocolError(
                f"assigned shift {assigned_shift} out of range"
            )
        self.assigned_shift = int(assigned_shift)
        self.baseline_rssi_dbm = float(query_rssi_dbm)
        self.state = DeviceState.ASSOCIATED
        self.skipped_rounds = 0
        self._transmitter = OnOffKeyedTransmitter(
            self.params, self.assigned_shift, self.switch.gain_db
        )

    def reset_association(self) -> None:
        """Drop back to the unassociated state (triggers re-association)."""
        self.state = DeviceState.UNASSOCIATED
        self.assigned_shift = None
        self.baseline_rssi_dbm = None
        self.skipped_rounds = 0
        self._transmitter = None

    # ------------------------------------------------------------------ #
    # fine-grained power adjustment (Section 3.2.3)
    # ------------------------------------------------------------------ #

    def adjust_power(
        self, query_rssi_dbm: float, hysteresis_db: float = 1.5
    ) -> Tuple[float, bool]:
        """Zero-overhead power adjustment before a concurrent round.

        Compares the current query RSSI against the association baseline:
        a stronger channel means the tag's backscatter would arrive hotter
        than its allocated slot tolerates, so it steps its gain *down*;
        a weaker channel steps it *up*. Returns ``(gain_db, participate)``.
        ``participate`` is False when the tag cannot compensate with its
        remaining levels and sits this round out; after two skipped rounds
        it re-initiates association.
        """
        if self.state != DeviceState.ASSOCIATED:
            raise ProtocolError("power adjustment requires association")
        delta_db = query_rssi_dbm - self.baseline_rssi_dbm
        participate = True
        if delta_db > hysteresis_db:
            if self.switch.can_step_down():
                self.switch.step_down()
            elif delta_db > 2.0 * hysteresis_db:
                participate = False
        elif delta_db < -hysteresis_db:
            if self.switch.can_step_up():
                self.switch.step_up()
            elif delta_db < -2.0 * hysteresis_db:
                participate = False

        if participate:
            self.skipped_rounds = 0
        else:
            self.skipped_rounds += 1
            if self.skipped_rounds > self.MAX_SKIPPED_BEFORE_REASSOCIATION:
                self.reset_association()
        if self._transmitter is not None:
            self._transmitter.power_gain_db = self.switch.gain_db
        return self.switch.gain_db, participate

    # ------------------------------------------------------------------ #
    # transmission
    # ------------------------------------------------------------------ #

    @property
    def transmitter(self) -> OnOffKeyedTransmitter:
        """The OOK transmitter bound to the assigned shift."""
        if self._transmitter is None:
            raise ProtocolError("device has no assigned cyclic shift")
        return self._transmitter

    def draw_impairments(self) -> TransmitImpairments:
        """Per-packet impairment draw (turnaround delay + CFO)."""
        return TransmitImpairments(
            hardware_delay_s=self.timing.sample_latency_s(self._rng),
            cfo_hz=self.oscillator.offset_hz(self._rng),
            power_gain_db=self.switch.gain_db,
        )

    def transmit_packet(
        self,
        bits: Sequence[int],
        n_upchirps: int = 6,
        n_downchirps: int = 2,
    ) -> Tuple[np.ndarray, TransmitImpairments]:
        """Build one uplink packet waveform plus its impairment stamp.

        The waveform is ideal complex baseband at the critical rate; the
        returned impairments tell the channel how late and how detuned
        this particular transmission is.
        """
        waveform = self.transmitter.packet(bits, n_upchirps, n_downchirps)
        return waveform, self.draw_impairments()

    def random_payload(self, n_bits: int) -> List[int]:
        """Uniform random payload bits from the device's own stream."""
        return self._rng.integers(0, 2, size=int(n_bits)).tolist()
