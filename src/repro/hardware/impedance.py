"""Backscatter impedance modulation and transmit power gain (Fig. 7a).

A backscatter tag transmits by toggling its antenna load between two
impedances ``Z0`` and ``Z1``; the radiated (modulated) power is set by the
difference of the two reflection coefficients:

    Gain_power = |Gamma0 - Gamma1|^2 / 4

with ``Gamma = (Z - Z_ant*) / (Z + Z_ant)``. Switching between a short
(0 ohm) and an open (infinite) maximises the difference (0 dB gain);
intermediate ``Z0`` values realise the reduced power levels NetScatter
uses for its fine-grained power adjustment.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import HardwareModelError

ANTENNA_IMPEDANCE_OHM = 50.0
"""Reference antenna impedance (real 50-ohm whip)."""


def reflection_coefficient(
    z_load_ohm: Optional[float],
    z_antenna_ohm: float = ANTENNA_IMPEDANCE_OHM,
) -> complex:
    """Reflection coefficient of a (real) load against the antenna.

    ``None`` stands for an open circuit (``Z -> infinity``, ``Gamma = 1``).
    """
    if z_antenna_ohm <= 0:
        raise HardwareModelError("antenna impedance must be positive")
    if z_load_ohm is None or math.isinf(z_load_ohm):
        return complex(1.0, 0.0)
    if z_load_ohm < 0:
        raise HardwareModelError("load impedance must be non-negative")
    return complex(
        (z_load_ohm - z_antenna_ohm) / (z_load_ohm + z_antenna_ohm), 0.0
    )


def backscatter_power_gain(
    z0_ohm: Optional[float],
    z1_ohm: Optional[float],
    z_antenna_ohm: float = ANTENNA_IMPEDANCE_OHM,
) -> float:
    """Linear power gain ``|Gamma0 - Gamma1|^2 / 4`` of a two-state switch.

    Equals 1.0 (0 dB) for the short/open extreme pair.
    """
    gamma0 = reflection_coefficient(z0_ohm, z_antenna_ohm)
    gamma1 = reflection_coefficient(z1_ohm, z_antenna_ohm)
    return abs(gamma0 - gamma1) ** 2 / 4.0


def backscatter_power_gain_db(
    z0_ohm: Optional[float],
    z1_ohm: Optional[float],
    z_antenna_ohm: float = ANTENNA_IMPEDANCE_OHM,
) -> float:
    """Power gain in dB (0 dB = maximum, short/open switching)."""
    gain = backscatter_power_gain(z0_ohm, z1_ohm, z_antenna_ohm)
    if gain <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(gain)


def gain_sweep(
    z0_values_ohm: np.ndarray,
    z1_ohm: Optional[float] = None,
    z_antenna_ohm: float = ANTENNA_IMPEDANCE_OHM,
) -> np.ndarray:
    """Gain (dB) as a function of ``Z0`` with ``Z1`` fixed (Fig. 7a).

    The paper's Fig. 7a sweeps ``Z0`` from 0 to 1000 ohm against an open
    ``Z1`` and plots the gain normalised to maximum power; this reproduces
    that curve.
    """
    z0_values_ohm = np.asarray(z0_values_ohm, dtype=float)
    return np.array(
        [
            backscatter_power_gain_db(z0, z1_ohm, z_antenna_ohm)
            for z0 in z0_values_ohm
        ]
    )


def solve_z0_for_gain_db(
    target_gain_db: float,
    z1_ohm: Optional[float] = None,
    z_antenna_ohm: float = ANTENNA_IMPEDANCE_OHM,
) -> float:
    """Find the real ``Z0`` realising ``target_gain_db`` against open ``Z1``.

    Inverts the gain expression on the monotone branch ``Z0 >= 0`` going
    up from the short: gains weaken as ``Z0`` rises toward the antenna
    impedance. Used to pick the resistor values of the 3-level switch
    network. Raises for unrealisable (positive) gains.
    """
    if target_gain_db > 0.0:
        raise HardwareModelError("backscatter gain cannot exceed 0 dB")
    gamma1 = reflection_coefficient(z1_ohm, z_antenna_ohm)
    # |Gamma0 - Gamma1| needed for the target gain:
    required_delta = 2.0 * math.sqrt(10.0 ** (target_gain_db / 10.0))
    # With real impedances, Gamma0 = gamma1.real - required_delta.
    gamma0 = gamma1.real - required_delta
    if gamma0 <= -1.0:
        # The exact 0 dB endpoint maps to the short.
        if math.isclose(gamma0, -1.0, abs_tol=1e-12):
            return 0.0
        raise HardwareModelError(
            f"gain {target_gain_db} dB not realisable against this Z1"
        )
    return z_antenna_ohm * (1.0 + gamma0) / (1.0 - gamma0)


def paper_fig7a_series(
    n_points: int = 101, z0_max_ohm: float = 1000.0
) -> Tuple[np.ndarray, np.ndarray]:
    """The (Z0, gain dB) series of Fig. 7a."""
    if n_points < 2:
        raise HardwareModelError("need at least two sweep points")
    z0 = np.linspace(0.0, z0_max_ohm, n_points)
    return z0, gain_sweep(z0)
