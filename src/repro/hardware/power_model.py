"""IC power budget of the NetScatter tag (Section 4.1, IC simulation).

The paper reports a TSMC 65 nm LP ASIC simulation totalling 45.2 uW:
envelope detector (<1 uW), baseband processor (5.7 uW), chirp generator
(36 uW) and switch network (2.5 uW). We keep this as a static budget model
with energy-per-packet accounting so examples can reason about battery /
harvesting feasibility — one of the paper's motivating constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.constants import (
    IC_POWER_BASEBAND_UW,
    IC_POWER_CHIRP_GENERATOR_UW,
    IC_POWER_ENVELOPE_DETECTOR_UW,
    IC_POWER_SWITCH_NETWORK_UW,
)
from repro.errors import HardwareModelError
from repro.phy.chirp import ChirpParams
from repro.phy.packet import PacketStructure


@dataclass(frozen=True)
class IcPowerBudget:
    """Static power budget of the tag ASIC (microwatts per block)."""

    envelope_detector_uw: float = IC_POWER_ENVELOPE_DETECTOR_UW
    baseband_uw: float = IC_POWER_BASEBAND_UW
    chirp_generator_uw: float = IC_POWER_CHIRP_GENERATOR_UW
    switch_network_uw: float = IC_POWER_SWITCH_NETWORK_UW

    def __post_init__(self) -> None:
        for name in (
            "envelope_detector_uw",
            "baseband_uw",
            "chirp_generator_uw",
            "switch_network_uw",
        ):
            if getattr(self, name) < 0:
                raise HardwareModelError(f"{name} must be non-negative")

    @property
    def total_uw(self) -> float:
        """Total active power (paper: 45.2 uW)."""
        return (
            self.envelope_detector_uw
            + self.baseband_uw
            + self.chirp_generator_uw
            + self.switch_network_uw
        )

    @property
    def rx_only_uw(self) -> float:
        """Power while only listening for queries (detector + baseband)."""
        return self.envelope_detector_uw + self.baseband_uw

    def breakdown(self) -> Dict[str, float]:
        """Per-block power map, for reporting."""
        return {
            "envelope_detector_uw": self.envelope_detector_uw,
            "baseband_uw": self.baseband_uw,
            "chirp_generator_uw": self.chirp_generator_uw,
            "switch_network_uw": self.switch_network_uw,
            "total_uw": self.total_uw,
        }

    def energy_per_packet_uj(
        self, params: ChirpParams, structure: PacketStructure
    ) -> float:
        """Transmit energy of one uplink packet (microjoules)."""
        return self.total_uw * structure.airtime_s(params)

    def packets_per_day_on_battery(
        self,
        params: ChirpParams,
        structure: PacketStructure,
        battery_mah: float = 225.0,
        battery_voltage_v: float = 3.0,
        lifetime_days: float = 365.0,
        duty_cycle_overhead: float = 1.2,
    ) -> float:
        """Packets/day sustainable on a button cell for ``lifetime_days``.

        Back-of-envelope feasibility matching the paper's motivation
        (CR2032-class cells and power harvesting): battery energy divided
        across the lifetime, minus the always-on receive floor.
        """
        if battery_mah <= 0 or battery_voltage_v <= 0 or lifetime_days <= 0:
            raise HardwareModelError("battery parameters must be positive")
        battery_uj = battery_mah * 3.6 * battery_voltage_v * 1e6
        budget_per_day_uj = battery_uj / lifetime_days
        rx_floor_uj = self.rx_only_uw * 86400.0
        available_uj = budget_per_day_uj - rx_floor_uj
        if available_uj <= 0:
            return 0.0
        per_packet = (
            self.energy_per_packet_uj(params, structure) * duty_cycle_overhead
        )
        return available_uj / per_packet
