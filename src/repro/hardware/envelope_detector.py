"""Envelope detector: the tag's downlink receiver and RSSI sensor.

The tag hears the AP's ASK queries through a passive envelope detector
with -49 dBm sensitivity. Besides demodulating query bits, the detector's
output level is the tag's only channel-state information — the signal
strength measurement that drives the reciprocity-based power adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import ENVELOPE_DETECTOR_SENSITIVITY_DBM
from repro.errors import HardwareModelError
from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class EnvelopeDetector:
    """Behavioural envelope-detector model.

    Attributes
    ----------
    sensitivity_dbm:
        Minimum carrier power at which queries decode (paper: -49 dBm).
    rssi_noise_std_db:
        Standard deviation of the RSSI measurement error; envelope
        detectors are coarse power meters, so a ~1 dB error is realistic.
    """

    sensitivity_dbm: float = ENVELOPE_DETECTOR_SENSITIVITY_DBM
    rssi_noise_std_db: float = 1.0

    def can_decode(self, rssi_dbm: float) -> bool:
        """Whether a query at ``rssi_dbm`` is decodable at all."""
        return rssi_dbm >= self.sensitivity_dbm

    def measure_rssi_dbm(
        self, true_rssi_dbm: float, rng: RngLike = None
    ) -> Optional[float]:
        """Noisy RSSI reading, or ``None`` below sensitivity."""
        if not self.can_decode(true_rssi_dbm):
            return None
        generator = make_rng(rng)
        if self.rssi_noise_std_db <= 0:
            return float(true_rssi_dbm)
        return float(true_rssi_dbm + generator.normal(scale=self.rssi_noise_std_db))

    def demodulate_ask(
        self,
        envelope: np.ndarray,
        samples_per_bit: int,
        threshold: Optional[float] = None,
    ) -> List[int]:
        """Demodulate an ASK (OOK) envelope into bits.

        Integrate-and-dump per bit period against a threshold; the default
        threshold is the midpoint of the observed envelope range, which is
        what a self-biasing comparator converges to.
        """
        if samples_per_bit < 1:
            raise HardwareModelError("samples_per_bit must be >= 1")
        envelope = np.abs(np.asarray(envelope, dtype=float))
        n_bits = envelope.size // samples_per_bit
        if n_bits == 0:
            raise HardwareModelError("envelope shorter than one bit period")
        trimmed = envelope[: n_bits * samples_per_bit]
        per_bit = trimmed.reshape(n_bits, samples_per_bit).mean(axis=1)
        if threshold is None:
            threshold = 0.5 * (per_bit.max() + per_bit.min())
        return [int(level > threshold) for level in per_bit]


def ask_modulate(
    bits: Sequence[int],
    samples_per_bit: int,
    high: float = 1.0,
    low: float = 0.0,
) -> np.ndarray:
    """Generate an ASK envelope for ``bits`` (AP downlink waveform)."""
    if samples_per_bit < 1:
        raise HardwareModelError("samples_per_bit must be >= 1")
    levels = []
    for bit in bits:
        if bit not in (0, 1):
            raise HardwareModelError(f"bits must be 0/1, got {bit!r}")
        levels.append(high if bit else low)
    return np.repeat(np.asarray(levels, dtype=float), samples_per_bit)
