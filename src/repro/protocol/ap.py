"""Access-point orchestration: queries, association and round control.

The AP ties together the allocation table (via the association
controller), the group scheduler and the concurrent receiver. One call to
:meth:`AccessPoint.run_association` walks a device through Fig. 10's
handshake; :meth:`AccessPoint.build_query` emits the next query message
with any pending grants or reassignments piggybacked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import NetScatterConfig
from repro.core.receiver import NetScatterReceiver
from repro.errors import AssociationError, ProtocolError
from repro.protocol.association import AssociationController
from repro.protocol.messages import AssociationResponse, QueryMessage
from repro.protocol.scheduler import GroupScheduler


@dataclass
class ApStats:
    """Counters the AP keeps for reporting."""

    queries_sent: int = 0
    reassignment_queries: int = 0
    associations_completed: int = 0
    rounds_run: int = 0
    downlink_bits_sent: int = 0


class AccessPoint:
    """The NetScatter AP."""

    def __init__(
        self,
        config: NetScatterConfig,
        group_span_db: float = 35.0,
        backend: str = "flat",
    ) -> None:
        self._config = config
        self._association = AssociationController(config, backend=backend)
        self._scheduler = GroupScheduler(
            max_group_size=config.max_devices,
            group_span_db=group_span_db,
            backend=backend,
        )
        self._needs_reassignment_query = False
        self._device_snrs: Dict[int, float] = {}
        self.stats = ApStats()

    @property
    def config(self) -> NetScatterConfig:
        return self._config

    @property
    def association(self) -> AssociationController:
        return self._association

    @property
    def backend(self) -> str:
        return self._association.backend

    @property
    def scheduler(self) -> GroupScheduler:
        return self._scheduler

    @property
    def n_members(self) -> int:
        return len(self._device_snrs)

    def assignments(self) -> Dict[int, int]:
        return self._association.assignments()

    # ------------------------------------------------------------------ #
    # association flow
    # ------------------------------------------------------------------ #

    def run_association(
        self, device_id: int, measured_snr_db: float, duty_cycle_rounds: int = 1
    ) -> int:
        """Full Fig. 10 handshake for one device; returns its shift.

        Models the request -> grant-on-query -> ACK exchange with the
        radio legs assumed delivered (the waveform-level association is
        exercised separately in the integration tests).
        """
        grant, reassigned = self._association.handle_request(
            device_id, measured_snr_db
        )
        self.stats.queries_sent += 1
        query = QueryMessage(association=grant)
        self.stats.downlink_bits_sent += query.n_bits
        if reassigned:
            self._needs_reassignment_query = True
        shift = self._association.handle_ack(device_id)
        self._device_snrs[device_id] = measured_snr_db
        self._scheduler.add_device(
            device_id, measured_snr_db, duty_cycle_rounds
        )
        self.stats.associations_completed += 1
        return shift

    def bulk_associate(
        self,
        device_ids,
        snrs_db,
        duty_cycle_rounds: int = 1,
    ):
        """Mass-admit many devices; returns their shifts.

        The population-scale fast path: every handshake completes under
        one allocation re-spread and one scheduler rebuild instead of N
        of each. Stats are charged exactly as N single associations —
        one grant query per device at the (constant) grant-query size —
        so protocol-overhead accounting matches the serial path.
        """
        ids = [int(d) for d in device_ids]
        shifts, reassigned = self._association.bulk_associate(ids, snrs_db)
        n = len(ids)
        self.stats.queries_sent += n
        if n:
            # All grant queries share one size: the association payload
            # is fixed-width, so compute a single exemplar and multiply.
            exemplar = QueryMessage(
                association=AssociationResponse(
                    network_id=ids[0] % 256,
                    cyclic_shift=int(shifts[0]) // self._config.skip,
                )
            )
            self.stats.downlink_bits_sent += n * exemplar.n_bits
        if reassigned:
            self._needs_reassignment_query = True
        for device_id, snr in zip(ids, snrs_db):
            self._device_snrs[device_id] = float(snr)
        self._scheduler.bulk_add(ids, snrs_db, duty_cycle_rounds)
        self.stats.associations_completed += n
        return shifts

    # ------------------------------------------------------------------ #
    # query / round flow
    # ------------------------------------------------------------------ #

    def build_query(self, group_id: int = 0) -> QueryMessage:
        """Next query message, carrying any pending protocol payloads."""
        reassignment = None
        if self._needs_reassignment_query and self.n_members > 1:
            # Announce the current ranking as a permutation of ranks.
            ranked = sorted(
                self._device_snrs,
                key=lambda d: self._device_snrs[d],
                reverse=True,
            )
            id_order = sorted(range(len(ranked)), key=lambda i: ranked[i])
            reassignment = id_order
            self._needs_reassignment_query = False
            self.stats.reassignment_queries += 1
        grants = self._association.pending_grants()
        query = QueryMessage(
            group_id=group_id,
            association=grants[0] if grants else None,
            reassignment_order=reassignment,
        )
        self.stats.queries_sent += 1
        self.stats.downlink_bits_sent += query.n_bits
        return query

    def next_round_devices(self) -> List[int]:
        """Devices scheduled for the next concurrent round."""
        self.stats.rounds_run += 1
        return self._scheduler.next_round()

    def receiver(self) -> NetScatterReceiver:
        """A receiver bound to the current assignments."""
        assignments = self.assignments()
        if not assignments:
            raise ProtocolError("no devices associated yet")
        return NetScatterReceiver(self._config, assignments)

    def update_member_snr(self, device_id: int, snr_db: float) -> bool:
        """Handle a re-association with a significantly changed SNR."""
        if device_id not in self._device_snrs:
            raise AssociationError(f"device {device_id} is not a member")
        self._device_snrs[device_id] = snr_db
        changed = self._association.handle_reassociation(device_id, snr_db)
        if changed:
            self._needs_reassignment_query = True
        return changed
