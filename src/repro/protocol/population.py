"""Flat-array population state: the million-device protocol backbone.

The protocol layer used to carry one Python object per device — an
``AllocationEntry`` in the allocation table, a ``PendingAssociation`` in
the association controller, a ``ScheduledDevice`` in the scheduler. At
the paper's 256 devices that is invisible; at the "million-device
protocol scale" item on the roadmap it *is* the cost, because every
admit, re-rank and round walks Python dictionaries. This module applies
the batched-fading treatment (PR 3's ``step_tracks`` idiom) to protocol
state: one :class:`Population` holds the whole AP-cluster as parallel
NumPy columns (SNR, assigned shift, association phase, grant/backoff
counters, duty cycle, per-device seeds), and the protocol classes become
thin views that update masked slices of it.

Two layers live here:

* **State + kernels** — :class:`Population` (struct-of-arrays with
  amortised growth and O(1) id lookup) and the vectorised allocation
  kernels (:func:`spread_slot_indices`, :func:`spread_shifts`,
  :func:`power_aware_shifts`, :func:`span_group_bounds`,
  :func:`assign_cluster`) that replace the per-device loops in
  ``core/allocation.py`` and the scheduler. The kernels are pinned
  bit-identical to the legacy object path by
  ``tests/test_population_scale.py``.
* **Hybrid fidelity** — :func:`split_fidelity` routes each similar-SNR
  group either to the closed-form link law (``core/capacity.py``,
  calibrated against the decode engine) or to an engine-level
  Monte-Carlo round, by the seeded rule documented in
  ``docs/SCALING.md``; :func:`hybrid_population_round` executes one
  population-wide round that way, which is how
  ``examples/living_network.py`` reaches 10^5+ devices.

Basic population bookkeeping:

>>> import numpy as np
>>> pop = Population()
>>> pop.bulk_add([7, 3, 9], [-12.0, -10.0, -14.0])
array([0, 1, 2])
>>> pop.n_devices
3
>>> pop.snr_db
array([-12., -10., -14.])
>>> pop.row_of(9)
2
>>> pop.ranked_rows()          # descending SNR, ties by insertion order
array([1, 0, 2])
>>> pop.remove(7)
>>> pop.device_id
array([3, 9])

The folded spread kernel (rank 0 strongest at one spectrum edge, rank 1
at the other, weakest mid-ring — Fig. 8's "High Power | Low Power |
High Power" layout), vectorised and cached per ``(devices, slots)``:

>>> spread_slot_indices(5, 10).tolist()
[0, 8, 2, 6, 4]
>>> spread_slot_indices(5, 10) is spread_slot_indices(5, 10)
True

The seeded fidelity split is deterministic in ``(snrs, rule, seed)``:

>>> snrs = np.array([-8.0, -9.0, -30.0, -31.0])
>>> groups = [np.array([0, 1]), np.array([2, 3])]
>>> split = split_fidelity(snrs, groups, FidelityRule(), seed=1)
>>> split.monte_carlo.tolist()    # group below the -10 dB validity floor
[False, True]
>>> split.reasons
['closed_form', 'validity_floor']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import NetScatterConfig
from repro.errors import AllocationError, ConfigurationError
from repro.utils.rng import RngLike, make_rng

#: Association lifecycle encoded in :attr:`Population.phase`
#: (mirrors ``repro.protocol.association.AssociationPhase``).
PHASE_REQUESTED = 0
PHASE_GRANTED = 1
PHASE_CONFIRMED = 2

#: The golden-ratio increment :func:`repro.utils.rng.child_seed` mixes
#: into per-index seeds; the vectorised derivation reuses it.
_SEED_GOLDEN = 0x9E3779B97F4A7C15
_SEED_MASK = 2**63 - 1


class Population:
    """Struct-of-arrays over an AP-cluster's devices.

    Parallel columns indexed by *row* (insertion order, the same order a
    Python dict of per-device objects would iterate in):

    ``device_id``
        int64 identifier (unique; O(1) lookup via :meth:`row_of`).
    ``snr_db``
        float64 effective uplink SNR at the AP (post power-control).
    ``shift``
        int64 assigned cyclic shift; ``-1`` while unassigned.
    ``phase``
        int8 association phase (``PHASE_REQUESTED`` /
        ``PHASE_GRANTED`` / ``PHASE_CONFIRMED``).
    ``grant_repeats``
        int64 grant retransmission counter (association backoff).
    ``granted_shift``
        int64 shift frozen into the grant message (stays stale if a
        later admit re-packs the ring — protocol-visible behaviour).
    ``duty_cycle_rounds`` / ``rounds_since_tx``
        int64 scheduler duty-cycle state.
    ``group``
        int64 scheduler group index; ``-1`` while ungrouped.
    ``seed``
        int64 per-device seed (see :meth:`derive_seeds`).

    Columns are exposed as live views of the first ``n_devices`` rows so
    the protocol layer can apply masked bulk updates in place; storage
    grows by doubling, so ``bulk_add`` is amortised O(rows added).
    """

    _COLUMNS = (
        ("device_id", np.int64, -1),
        ("snr_db", np.float64, 0.0),
        ("shift", np.int64, -1),
        ("phase", np.int8, PHASE_CONFIRMED),
        ("grant_repeats", np.int64, 0),
        ("granted_shift", np.int64, -1),
        ("duty_cycle_rounds", np.int64, 1),
        ("rounds_since_tx", np.int64, 0),
        ("group", np.int64, -1),
        ("seed", np.int64, 0),
    )

    def __init__(self, initial_capacity: int = 64) -> None:
        self._capacity = max(int(initial_capacity), 1)
        self._n = 0
        self._data: Dict[str, np.ndarray] = {
            name: np.full(self._capacity, fill, dtype=dtype)
            for name, dtype, fill in self._COLUMNS
        }
        self._rows: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # storage
    # ------------------------------------------------------------------ #

    @property
    def n_devices(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    def _column(self, name: str) -> np.ndarray:
        return self._data[name][: self._n]

    @property
    def device_id(self) -> np.ndarray:
        return self._column("device_id")

    @property
    def snr_db(self) -> np.ndarray:
        return self._column("snr_db")

    @property
    def shift(self) -> np.ndarray:
        return self._column("shift")

    @property
    def phase(self) -> np.ndarray:
        return self._column("phase")

    @property
    def grant_repeats(self) -> np.ndarray:
        return self._column("grant_repeats")

    @property
    def granted_shift(self) -> np.ndarray:
        return self._column("granted_shift")

    @property
    def duty_cycle_rounds(self) -> np.ndarray:
        return self._column("duty_cycle_rounds")

    @property
    def rounds_since_tx(self) -> np.ndarray:
        return self._column("rounds_since_tx")

    @property
    def group(self) -> np.ndarray:
        return self._column("group")

    @property
    def seed(self) -> np.ndarray:
        return self._column("seed")

    def _grow_to(self, capacity: int) -> None:
        if capacity <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < capacity:
            new_capacity *= 2
        for name, dtype, fill in self._COLUMNS:
            grown = np.full(new_capacity, fill, dtype=dtype)
            grown[: self._n] = self._data[name][: self._n]
            self._data[name] = grown
        self._capacity = new_capacity

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    def __contains__(self, device_id: int) -> bool:
        return int(device_id) in self._rows

    def row_of(self, device_id: int) -> int:
        """Row index of ``device_id``; raises on unknown devices."""
        try:
            return self._rows[int(device_id)]
        except KeyError:
            raise AllocationError(
                f"device {device_id} is not allocated"
            ) from None

    def add(self, device_id: int, snr_db: float) -> int:
        """Append one device; returns its row index."""
        return int(self.bulk_add([device_id], [snr_db])[0])

    def bulk_add(
        self,
        device_ids: Sequence[int],
        snrs_db: Sequence[float],
    ) -> np.ndarray:
        """Append many devices at once; returns their row indices.

        One capacity check, one copy per column — the O(rows-added) bulk
        admit the scale path depends on. Duplicate ids (against the
        existing population or within the batch) are rejected.
        """
        ids = np.asarray(device_ids, dtype=np.int64)
        snrs = np.asarray(snrs_db, dtype=np.float64)
        if ids.shape != snrs.shape or ids.ndim != 1:
            raise AllocationError(
                "device ids and SNRs must be 1-D and aligned"
            )
        if np.unique(ids).size != ids.size:
            raise AllocationError("duplicate device ids in bulk add")
        for device_id in ids:
            if int(device_id) in self._rows:
                raise AllocationError(
                    f"device {int(device_id)} already allocated"
                )
        start = self._n
        self._grow_to(start + ids.size)
        self._n = start + ids.size
        rows = np.arange(start, self._n)
        self._data["device_id"][rows] = ids
        self._data["snr_db"][rows] = snrs
        for name, dtype, fill in self._COLUMNS[2:]:
            self._data[name][rows] = fill
        self._rows.update(
            (int(device_id), int(row)) for device_id, row in zip(ids, rows)
        )
        return rows

    def remove(self, device_id: int) -> None:
        """Remove one device, compacting rows (insertion order kept)."""
        row = self.row_of(device_id)
        for name, _, _ in self._COLUMNS:
            column = self._data[name]
            column[row : self._n - 1] = column[row + 1 : self._n]
        self._n -= 1
        del self._rows[int(device_id)]
        shifted = self._data["device_id"][row : self._n]
        self._rows.update(
            (int(moved), row + offset)
            for offset, moved in enumerate(shifted)
        )

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #

    def ranked_rows(self) -> np.ndarray:
        """Rows in descending-SNR order, ties by insertion order.

        The stable counterpart of Python's ``sorted(..., reverse=True)``
        over a per-device dict — the canonical ring order the allocation
        table ranks by.
        """
        return np.argsort(-self.snr_db, kind="stable")

    def derive_seeds(self, rng: RngLike = None) -> np.ndarray:
        """Fill the ``seed`` column with per-device child seeds.

        Same construction as :func:`repro.utils.rng.child_seed` — one
        base draw XOR a golden-ratio row mix — drawn as a single batched
        ``integers`` call instead of one Python call per device.
        """
        generator = make_rng(rng)
        base = generator.integers(0, 2**63 - 1, size=self._n)
        rows = np.arange(self._n, dtype=np.uint64)
        mixed = base.astype(np.uint64) ^ (
            (rows * np.uint64(_SEED_GOLDEN)) & np.uint64(_SEED_MASK)
        )
        seeds = mixed.astype(np.int64)
        self._data["seed"][: self._n] = seeds
        return self.seed


# ---------------------------------------------------------------------- #
# vectorised allocation kernels
# ---------------------------------------------------------------------- #


@lru_cache(maxsize=512)
def spread_slot_indices(n_devices: int, n_slots: int) -> np.ndarray:
    """Folded slot indices for descending-SNR ranks, cached per shape.

    The vectorised form of the legacy per-rank loop: even ranks walk the
    evenly-spread positions forward from the first spectrum edge, odd
    ranks walk them backward from the other edge, so the weakest devices
    land mid-ring at maximum cyclic distance from the strong edges.
    Returns a read-only int64 array (cached; do not mutate).

    >>> spread_slot_indices(4, 8).tolist()
    [0, 6, 2, 4]
    >>> spread_slot_indices(1, 8).tolist()
    [0]
    """
    if n_devices > n_slots:
        raise AllocationError("more devices than slots")
    ranks = np.arange(n_devices, dtype=np.int64)
    positions = (ranks * n_slots) // n_devices
    indices = np.empty(n_devices, dtype=np.int64)
    indices[0::2] = positions[: (n_devices + 1) // 2]
    indices[1::2] = positions[::-1][: n_devices // 2]
    indices.setflags(write=False)
    return indices


def spread_shifts(
    snrs_db: np.ndarray, slots: np.ndarray
) -> np.ndarray:
    """Per-row spread shifts for a population (stable ranking).

    ``slots`` is the ring-ordered data-slot array; row ``i`` of the
    result is device ``i``'s shift under the canonical folded spread —
    the allocation table's ``_spread_assignment`` as one argsort plus
    two gathers.

    >>> import numpy as np
    >>> spread_shifts(np.array([-10.0, -30.0, -20.0]),
    ...               np.array([2, 4, 6, 8, 10, 12])).tolist()
    [2, 6, 10]
    """
    snrs = np.asarray(snrs_db, dtype=np.float64)
    n = snrs.size
    order = np.argsort(-snrs, kind="stable")
    indices = spread_slot_indices(n, int(np.asarray(slots).size))
    shifts = np.empty(n, dtype=np.int64)
    shifts[order] = np.asarray(slots, dtype=np.int64)[indices]
    return shifts


def power_aware_shifts(
    snrs_db: np.ndarray, slots: np.ndarray
) -> np.ndarray:
    """One-shot power-aware allocation kernel (argsort ranking).

    The vectorised body of
    :func:`repro.core.allocation.power_aware_allocation`: ranks with the
    same ``np.argsort(snrs)[::-1]`` expression the legacy loop used (so
    tie order is bit-identical) and gathers the folded spread slots.
    """
    snrs = np.asarray(snrs_db, dtype=np.float64)
    n = snrs.size
    order = np.argsort(snrs)[::-1]
    indices = spread_slot_indices(n, int(np.asarray(slots).size))
    shifts = np.empty(n, dtype=np.int64)
    shifts[order] = np.asarray(slots, dtype=np.int64)[indices]
    return shifts


def span_group_bounds(
    sorted_snrs_desc: np.ndarray, group_span_db: float
) -> List[int]:
    """Greedy span-group boundaries over descending-sorted SNRs.

    Returns the start index of each group (the vectorised form of
    :func:`repro.core.power_control.snr_groups`'s greedy walk: a group
    extends while ``top - snr <= group_span_db``). The loop runs once
    per *group*, not per device.
    """
    if group_span_db <= 0:
        raise ConfigurationError("group span must be positive")
    s = np.asarray(sorted_snrs_desc, dtype=np.float64)
    bounds: List[int] = []
    start = 0
    n = s.size
    while start < n:
        bounds.append(start)
        inside = s[start] - s[start:] <= group_span_db
        if inside.all():
            break
        start += int(np.argmin(inside))
    return bounds


def assign_cluster(
    snrs_db: np.ndarray,
    config: NetScatterConfig,
    group_span_db: float = 35.0,
) -> List[np.ndarray]:
    """Partition a population into schedulable similar-SNR groups.

    Greedy span grouping over the descending-SNR order (identical to
    the scheduler's legacy ``snr_groups`` + max-size split), each group
    capped at ``config.max_devices``. Returns one row-index array per
    group, members in descending-SNR order.
    """
    snrs = np.asarray(snrs_db, dtype=np.float64)
    if snrs.size == 0:
        return []
    order = np.argsort(snrs)[::-1]
    s = snrs[order]
    max_size = config.max_devices
    groups: List[np.ndarray] = []
    bounds = span_group_bounds(s, group_span_db)
    bounds.append(snrs.size)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        for start in range(lo, hi, max_size):
            groups.append(order[start : min(start + max_size, hi)])
    return groups


# ---------------------------------------------------------------------- #
# hybrid fidelity
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FidelityRule:
    """The documented, seeded fidelity-split rule (docs/SCALING.md).

    A similar-SNR group is simulated with the engine (Monte-Carlo) when
    any of these hold, in priority order; otherwise it is aggregated in
    closed form:

    * ``validity_floor`` — a member sits below
      ``closed_form_min_snr_db``, the floor under which the calibrated
      closed-form law drifts from the engine. The default (-10 dB at
      SF 9) keeps closed-form groups out of the marginal-delivery
      transition zone, where the law's residual bias (up to ~+0.04
      delivery per device around -16 dB) would otherwise accumulate
      into a visible population-level skew; above the floor the
      per-device delivery gap is under ~0.015 (docs/SCALING.md
      tabulates the measured curve);
    * ``contended`` — the group's internal SNR span exceeds
      ``contention_span_db``, so near-far side-lobe interference
      (which the closed form does not model) matters;
    * ``audit`` — a seeded random sample of otherwise closed-form
      groups (``audit_fraction``) also runs Monte-Carlo so every hybrid
      round cross-checks the law in production.

    The audit draw is made for *every* group from
    ``numpy.random.default_rng(seed)`` before any routing decision, so
    one group's mode never perturbs another's draw and the whole split
    is a pure function of ``(snrs, rule, seed)``.
    """

    group_span_db: float = 35.0
    closed_form_min_snr_db: float = -10.0
    contention_span_db: float = 30.0
    audit_fraction: float = 0.02
    monte_carlo_rounds: int = 1


@dataclass
class FidelitySplit:
    """Routing decision of one hybrid round."""

    monte_carlo: np.ndarray
    reasons: List[str]
    group_seeds: np.ndarray
    seed: int

    @property
    def n_monte_carlo(self) -> int:
        return int(np.sum(self.monte_carlo))

    @property
    def n_closed_form(self) -> int:
        return int(self.monte_carlo.size - self.n_monte_carlo)


def split_fidelity(
    snrs_db: np.ndarray,
    groups: Sequence[np.ndarray],
    rule: FidelityRule,
    seed: int,
    force_monte_carlo: bool = False,
) -> FidelitySplit:
    """Route each group to closed form or Monte-Carlo (seeded, pure).

    Also derives one child seed per group (same golden-ratio mix as
    :func:`repro.utils.rng.child_seed`) — drawn after the audit draws,
    independent of the routing outcome, so a Monte-Carlo leg's draws
    never depend on how *other* groups were routed.
    """
    snrs = np.asarray(snrs_db, dtype=np.float64)
    n_groups = len(groups)
    rng = np.random.default_rng(seed)
    audit_draws = rng.random(n_groups)
    base = rng.integers(0, 2**63 - 1, size=max(n_groups, 1))
    indices = np.arange(n_groups, dtype=np.uint64)
    group_seeds = (
        base[:n_groups].astype(np.uint64)
        ^ ((indices * np.uint64(_SEED_GOLDEN)) & np.uint64(_SEED_MASK))
    ).astype(np.int64)

    monte_carlo = np.zeros(n_groups, dtype=bool)
    reasons: List[str] = []
    for g, rows in enumerate(groups):
        member_snrs = snrs[rows]
        if force_monte_carlo:
            monte_carlo[g] = True
            reasons.append("forced")
        elif float(member_snrs.min()) < rule.closed_form_min_snr_db:
            monte_carlo[g] = True
            reasons.append("validity_floor")
        elif (
            float(member_snrs.max() - member_snrs.min())
            > rule.contention_span_db
        ):
            monte_carlo[g] = True
            reasons.append("contended")
        elif audit_draws[g] < rule.audit_fraction:
            monte_carlo[g] = True
            reasons.append("audit")
        else:
            reasons.append("closed_form")
    return FidelitySplit(
        monte_carlo=monte_carlo,
        reasons=reasons,
        group_seeds=group_seeds,
        seed=int(seed),
    )


@dataclass
class PopulationRoundResult:
    """Aggregate outcome of one hybrid population round.

    ``delivery_ratio`` / ``bit_error_rate`` mix the closed-form groups'
    *expected* values with the Monte-Carlo groups' *realised* ones,
    weighted by group size — the population-level metrics the scaling
    curves in ``docs/SCALING.md`` report.
    """

    n_devices: int
    n_groups: int
    n_closed_form_groups: int
    n_monte_carlo_groups: int
    n_closed_form_devices: int
    n_monte_carlo_devices: int
    delivery_ratio: float
    bit_error_rate: float
    seed: int
    reasons: List[str] = field(default_factory=list)
    #: Delivery-ratio gaps |closed form - engine| of the audited groups.
    audit_gaps: List[float] = field(default_factory=list)

    @property
    def audit_max_gap(self) -> float:
        return max(self.audit_gaps) if self.audit_gaps else 0.0


def office_population(
    n_devices: int,
    rng: RngLike = None,
    snr_scale_db: float = 0.0,
    floor_size_m=(40.0, 20.0),
    room_size_m: float = 8.0,
    min_distance_m: float = 4.0,
    budget=None,
) -> Population:
    """Vectorised office-floor population (the scale-path deployment).

    Applies the same link-budget law as
    :func:`repro.channel.deployment.paper_deployment` — log-distance
    path loss plus per-wall penalties through the room grid — but draws
    every position in one batch and computes every SNR as array maths,
    so building 10^6 devices allocates columns, not objects. The
    per-position SNR law is pinned against ``LinkBudget.uplink_snr_db``
    by the equivalence suite. ``snr_scale_db`` shifts the whole
    population (the experiments' ``reference_snr_scale_db`` knob).
    """
    from repro.channel.awgn import noise_power_dbm
    from repro.channel.link import LinkBudget
    from repro.channel.pathloss import free_space_path_loss_db

    if n_devices < 1:
        raise ConfigurationError("need at least one device")
    if budget is None:
        budget = LinkBudget(path_loss_exponent=2.0, wall_loss_db=2.0)
    generator = make_rng(rng)
    fx, fy = float(floor_size_m[0]), float(floor_size_m[1])
    ap = np.array([fx / 2.0, fy / 2.0])
    xy = generator.uniform([0.0, 0.0], [fx, fy], size=(n_devices, 2))
    distance = np.hypot(xy[:, 0] - ap[0], xy[:, 1] - ap[1])
    distance = np.maximum(distance, min_distance_m)

    walls = np.zeros(n_devices, dtype=np.int64)
    for axis in range(2):
        lo = np.minimum(ap[axis], xy[:, axis]) / room_size_m
        hi = np.maximum(ap[axis], xy[:, axis]) / room_size_m
        walls += np.maximum(
            0, np.floor(hi).astype(np.int64) - np.ceil(lo).astype(np.int64) + 1
        )

    reference = free_space_path_loss_db(1.0, budget.carrier_freq_hz)
    one_way = (
        reference
        + 10.0
        * budget.path_loss_exponent
        * np.log10(np.maximum(distance, 1.0))
        + walls * budget.wall_loss_db
    )
    uplink_rssi = (
        budget.ap_tx_power_dbm
        + 2.0 * budget.tag_antenna_gain_dbi
        - 2.0 * one_way
        - budget.backscatter_insertion_loss_db
    )
    snrs = (
        uplink_rssi
        - noise_power_dbm(budget.bandwidth_hz, budget.noise_figure_db)
        + snr_scale_db
    )
    pop = Population(initial_capacity=n_devices)
    pop.bulk_add(np.arange(n_devices, dtype=np.int64), snrs)
    pop.derive_seeds(generator)
    return pop


def _closed_form_group_metrics(snrs: np.ndarray, config: NetScatterConfig):
    """Expected (delivered, correct-bit fraction) of an uncontended group."""
    from repro.core.capacity import (
        effective_bit_error_rate,
        packet_delivery_probability,
    )

    delivery = packet_delivery_probability(snrs, config.spreading_factor)
    ber = effective_bit_error_rate(snrs, config.spreading_factor)
    return float(np.sum(delivery)), float(np.mean(ber))


def _monte_carlo_group_metrics(
    snrs: np.ndarray,
    device_ids: np.ndarray,
    config: NetScatterConfig,
    seed: int,
    n_rounds: int,
):
    """Engine-level realised (delivered, BER) for one contended group."""
    from repro.channel.deployment import Deployment
    from repro.protocol.network import NetworkSimulator

    deployment = Deployment.from_snrs(snrs, device_ids=device_ids)
    simulator = NetworkSimulator(
        deployment,
        config=config,
        power_control=False,
        rng=int(seed) & _SEED_MASK,
    )
    metrics = simulator.run_rounds(max(int(n_rounds), 1))
    return (
        metrics.delivery_ratio * snrs.size,
        metrics.bit_error_rate,
    )


def hybrid_population_round(
    population: Population,
    config: Optional[NetScatterConfig] = None,
    rule: Optional[FidelityRule] = None,
    seed: int = 0,
    force_monte_carlo: bool = False,
) -> PopulationRoundResult:
    """One population-wide round under the hybrid-fidelity split.

    Partitions the population into similar-SNR groups
    (:func:`assign_cluster`), routes each group by the seeded
    :class:`FidelityRule`, aggregates the uncontended bulk through the
    calibrated closed-form link law and simulates the contended tail
    with the analytic decode engine — ``rule.monte_carlo_rounds``
    concurrent rounds per Monte-Carlo group, each group seeded by its
    pre-derived child seed. Audited groups contribute their engine
    result and record the |closed form - engine| delivery gap.

    The population's ``snr_db`` column is taken as the *effective*
    (post power-control) uplink SNR; both fidelity modes consume the
    same convention, which is what makes them statistically
    interchangeable (gated at 10^4 devices by
    ``tests/test_population_scale.py``).
    """
    if config is None:
        config = NetScatterConfig(n_association_shifts=0)
    if rule is None:
        rule = FidelityRule()
    snrs = population.snr_db
    if snrs.size == 0:
        raise ConfigurationError("population is empty")
    groups = assign_cluster(snrs, config, rule.group_span_db)
    split = split_fidelity(
        snrs, groups, rule, seed, force_monte_carlo=force_monte_carlo
    )

    delivered = 0.0
    ber_weighted = 0.0
    cf_groups = mc_groups = cf_devices = mc_devices = 0
    audit_gaps: List[float] = []
    for g, rows in enumerate(groups):
        member_snrs = snrs[rows]
        if split.monte_carlo[g]:
            group_delivered, group_ber = _monte_carlo_group_metrics(
                member_snrs,
                population.device_id[rows],
                config,
                int(split.group_seeds[g]),
                rule.monte_carlo_rounds,
            )
            mc_groups += 1
            mc_devices += rows.size
            if split.reasons[g] == "audit":
                expected, _ = _closed_form_group_metrics(
                    member_snrs, config
                )
                audit_gaps.append(
                    abs(expected - group_delivered) / rows.size
                )
        else:
            group_delivered, group_ber = _closed_form_group_metrics(
                member_snrs, config
            )
            cf_groups += 1
            cf_devices += rows.size
        delivered += group_delivered
        ber_weighted += group_ber * rows.size

    n = int(snrs.size)
    return PopulationRoundResult(
        n_devices=n,
        n_groups=len(groups),
        n_closed_form_groups=cf_groups,
        n_monte_carlo_groups=mc_groups,
        n_closed_form_devices=cf_devices,
        n_monte_carlo_devices=mc_devices,
        delivery_ratio=delivered / n,
        bit_error_rate=ber_weighted / n,
        seed=int(seed),
        reasons=split.reasons,
        audit_gaps=audit_gaps,
    )
