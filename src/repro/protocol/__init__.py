"""NetScatter protocol layer: queries, association, scheduling, network.

The AP broadcasts ASK query messages that simultaneously synchronise the
concurrent round, carry association responses and (when needed) full
cyclic-shift reassignments. Devices associate through reserved cyclic
shifts and then participate in concurrent rounds. The network simulator
executes full query/response rounds over a synthetic deployment to
produce the paper's Figs. 17-19.
"""

from repro.protocol.ap import AccessPoint
from repro.protocol.association import AssociationController
from repro.protocol.messages import QueryMessage, AssociationResponse
from repro.protocol.network import (
    NetworkSimulator,
    NetworkMetrics,
    RoundResult,
    sweep_device_counts,
)

__all__ = [
    "AccessPoint",
    "AssociationController",
    "QueryMessage",
    "AssociationResponse",
    "NetworkSimulator",
    "NetworkMetrics",
    "RoundResult",
    "sweep_device_counts",
]
