"""Group scheduling of concurrent rounds (Section 3.3.3).

A network can hold more devices than one concurrent round supports. The
AP assigns devices to groups — by similar signal strength, which also
bounds each group's dynamic range — and schedules groups round-robin,
honouring each device's duty cycle learned at association.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.power_control import snr_groups
from repro.errors import ProtocolError


@dataclass
class ScheduledDevice:
    """Scheduler-side view of one device."""

    device_id: int
    snr_db: float
    duty_cycle_rounds: int = 1
    rounds_since_tx: int = 0

    def due(self) -> bool:
        """Whether the device's duty cycle makes it due this round."""
        return self.rounds_since_tx + 1 >= self.duty_cycle_rounds


class GroupScheduler:
    """Round-robin scheduler over SNR-grouped devices."""

    def __init__(
        self,
        max_group_size: int,
        group_span_db: float = 35.0,
    ) -> None:
        if max_group_size < 1:
            raise ProtocolError("max_group_size must be >= 1")
        self._max_group_size = int(max_group_size)
        self._group_span_db = float(group_span_db)
        self._devices: Dict[int, ScheduledDevice] = {}
        self._groups: List[List[int]] = []
        self._next_group = 0

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    @property
    def groups(self) -> List[List[int]]:
        return [list(g) for g in self._groups]

    def add_device(
        self, device_id: int, snr_db: float, duty_cycle_rounds: int = 1
    ) -> None:
        if device_id in self._devices:
            raise ProtocolError(f"device {device_id} already scheduled")
        if duty_cycle_rounds < 1:
            raise ProtocolError("duty cycle must be >= 1 round")
        self._devices[device_id] = ScheduledDevice(
            device_id=device_id,
            snr_db=float(snr_db),
            duty_cycle_rounds=int(duty_cycle_rounds),
        )
        self._rebuild_groups()

    def remove_device(self, device_id: int) -> None:
        if device_id not in self._devices:
            raise ProtocolError(f"device {device_id} is not scheduled")
        del self._devices[device_id]
        self._rebuild_groups()

    def _rebuild_groups(self) -> None:
        """Group by SNR span, then split oversized groups."""
        if not self._devices:
            self._groups = []
            return
        ids = list(self._devices)
        snrs = [self._devices[d].snr_db for d in ids]
        raw_groups = snr_groups(snrs, self._group_span_db)
        groups: List[List[int]] = []
        for group in raw_groups:
            members = [ids[i] for i in group]
            for start in range(0, len(members), self._max_group_size):
                groups.append(members[start : start + self._max_group_size])
        self._groups = groups
        self._next_group %= max(1, len(self._groups))

    def next_round(self) -> List[int]:
        """Devices transmitting in the next concurrent round.

        Picks the next group round-robin and filters by duty cycle;
        devices not due simply skip the round (their shifts stay idle —
        OOK '0's all round, which the receiver handles naturally).
        """
        if not self._groups:
            return []
        group = self._groups[self._next_group]
        self._next_group = (self._next_group + 1) % len(self._groups)
        transmitting: List[int] = []
        for device_id in group:
            device = self._devices[device_id]
            if device.due():
                transmitting.append(device_id)
                device.rounds_since_tx = 0
            else:
                device.rounds_since_tx += 1
        # Devices outside the scheduled group also age their duty cycle.
        for device_id, device in self._devices.items():
            if device_id not in group:
                device.rounds_since_tx += 1
        return transmitting

    def group_of(self, device_id: int) -> int:
        """Group index of a device (the query's group ID)."""
        for index, group in enumerate(self._groups):
            if device_id in group:
                return index
        raise ProtocolError(f"device {device_id} is not scheduled")
