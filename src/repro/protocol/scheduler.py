"""Group scheduling of concurrent rounds (Section 3.3.3).

A network can hold more devices than one concurrent round supports. The
AP assigns devices to groups — by similar signal strength, which also
bounds each group's dynamic range — and schedules groups round-robin,
honouring each device's duty cycle learned at association.

The default backend keeps the roster in flat NumPy columns (SNR, duty
cycle, rounds-since-transmit) so a rebuild is one stable argsort plus
the vectorised span grouping (:func:`repro.protocol.population.
span_group_bounds`) and a round tick is a handful of masked array
updates; ``backend="object"`` preserves the per-device
:class:`ScheduledDevice` implementation, pinned bit-identical by the
equivalence suite. :meth:`GroupScheduler.bulk_add` enrols many devices
under a single rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.power_control import snr_groups
from repro.errors import ProtocolError
from repro.protocol.population import span_group_bounds

#: Scheduler storage backends (mirrors ``allocation.TABLE_BACKENDS``).
SCHEDULER_BACKENDS = ("flat", "object")


@dataclass
class ScheduledDevice:
    """Scheduler-side view of one device (object backend)."""

    device_id: int
    snr_db: float
    duty_cycle_rounds: int = 1
    rounds_since_tx: int = 0

    def due(self) -> bool:
        """Whether the device's duty cycle makes it due this round."""
        return self.rounds_since_tx + 1 >= self.duty_cycle_rounds


class GroupScheduler:
    """Round-robin scheduler over SNR-grouped devices."""

    def __init__(
        self,
        max_group_size: int,
        group_span_db: float = 35.0,
        backend: str = "flat",
    ) -> None:
        if max_group_size < 1:
            raise ProtocolError("max_group_size must be >= 1")
        if backend not in SCHEDULER_BACKENDS:
            raise ProtocolError(
                f"backend must be one of {SCHEDULER_BACKENDS}, "
                f"got {backend!r}"
            )
        self._max_group_size = int(max_group_size)
        self._group_span_db = float(group_span_db)
        self._backend = backend
        self._next_group = 0
        if backend == "flat":
            self._ids = np.empty(0, dtype=np.int64)
            self._rows: Dict[int, int] = {}
            self._snr = np.empty(0, dtype=np.float64)
            self._duty = np.empty(0, dtype=np.int64)
            self._rst = np.empty(0, dtype=np.int64)
            self._group_rows: List[np.ndarray] = []
            self._devices = None
        else:
            self._devices: Dict[int, ScheduledDevice] = {}
        self._groups: List[List[int]] = []

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    @property
    def groups(self) -> List[List[int]]:
        return [list(g) for g in self._groups]

    def add_device(
        self, device_id: int, snr_db: float, duty_cycle_rounds: int = 1
    ) -> None:
        if self._backend == "flat":
            if device_id in self._rows:
                raise ProtocolError(f"device {device_id} already scheduled")
            if duty_cycle_rounds < 1:
                raise ProtocolError("duty cycle must be >= 1 round")
            self._append_rows([device_id], [snr_db], [duty_cycle_rounds])
            self._rebuild_groups()
            return
        if device_id in self._devices:
            raise ProtocolError(f"device {device_id} already scheduled")
        if duty_cycle_rounds < 1:
            raise ProtocolError("duty cycle must be >= 1 round")
        self._devices[device_id] = ScheduledDevice(
            device_id=device_id,
            snr_db=float(snr_db),
            duty_cycle_rounds=int(duty_cycle_rounds),
        )
        self._rebuild_groups()

    def bulk_add(
        self,
        device_ids: Sequence[int],
        snrs_db: Sequence[float],
        duty_cycle_rounds: int = 1,
    ) -> None:
        """Enrol many devices under a *single* group rebuild.

        The population-scale fast path: N per-device admits cost N
        rebuilds (O(N² log N) total); one bulk admit costs one. Same
        final grouping as the serial sequence on both backends.
        """
        if duty_cycle_rounds < 1:
            raise ProtocolError("duty cycle must be >= 1 round")
        ids = [int(d) for d in device_ids]
        if len(set(ids)) != len(ids):
            raise ProtocolError("duplicate device ids in bulk add")
        if self._backend == "flat":
            for device_id in ids:
                if device_id in self._rows:
                    raise ProtocolError(
                        f"device {device_id} already scheduled"
                    )
            self._append_rows(
                ids, snrs_db, [duty_cycle_rounds] * len(ids)
            )
        else:
            for device_id in ids:
                if device_id in self._devices:
                    raise ProtocolError(
                        f"device {device_id} already scheduled"
                    )
            for device_id, snr_db in zip(ids, snrs_db):
                self._devices[device_id] = ScheduledDevice(
                    device_id=device_id,
                    snr_db=float(snr_db),
                    duty_cycle_rounds=int(duty_cycle_rounds),
                )
        self._rebuild_groups()

    def _append_rows(self, ids, snrs, duties) -> None:
        start = self._ids.size
        self._ids = np.concatenate(
            [self._ids, np.asarray(ids, dtype=np.int64)]
        )
        self._snr = np.concatenate(
            [self._snr, np.asarray(snrs, dtype=np.float64)]
        )
        self._duty = np.concatenate(
            [self._duty, np.asarray(duties, dtype=np.int64)]
        )
        self._rst = np.concatenate(
            [self._rst, np.zeros(len(ids), dtype=np.int64)]
        )
        for offset, device_id in enumerate(ids):
            self._rows[int(device_id)] = start + offset

    def remove_device(self, device_id: int) -> None:
        if self._backend == "flat":
            if device_id not in self._rows:
                raise ProtocolError(f"device {device_id} is not scheduled")
            row = self._rows.pop(device_id)
            keep = np.ones(self._ids.size, dtype=bool)
            keep[row] = False
            self._ids = self._ids[keep]
            self._snr = self._snr[keep]
            self._duty = self._duty[keep]
            self._rst = self._rst[keep]
            for moved in self._rows:
                if self._rows[moved] > row:
                    self._rows[moved] -= 1
            self._rebuild_groups()
            return
        if device_id not in self._devices:
            raise ProtocolError(f"device {device_id} is not scheduled")
        del self._devices[device_id]
        self._rebuild_groups()

    def _rebuild_groups(self) -> None:
        """Group by SNR span, then split oversized groups."""
        if self._backend == "flat":
            n = self._ids.size
            if n == 0:
                self._groups = []
                self._group_rows = []
                return
            order = np.argsort(-self._snr, kind="stable")
            starts = span_group_bounds(
                self._snr[order], self._group_span_db
            )
            stops = list(starts[1:]) + [n]
            group_rows: List[np.ndarray] = []
            for start, stop in zip(starts, stops):
                members = order[start:stop]
                for cut in range(0, members.size, self._max_group_size):
                    group_rows.append(
                        members[cut : cut + self._max_group_size]
                    )
            self._group_rows = group_rows
            self._groups = [
                self._ids[rows].tolist() for rows in group_rows
            ]
            self._next_group %= max(1, len(self._groups))
            return
        if not self._devices:
            self._groups = []
            return
        ids = list(self._devices)
        snrs = [self._devices[d].snr_db for d in ids]
        raw_groups = snr_groups(snrs, self._group_span_db)
        groups: List[List[int]] = []
        for group in raw_groups:
            members = [ids[i] for i in group]
            for start in range(0, len(members), self._max_group_size):
                groups.append(members[start : start + self._max_group_size])
        self._groups = groups
        self._next_group %= max(1, len(self._groups))

    def next_round(self) -> List[int]:
        """Devices transmitting in the next concurrent round.

        Picks the next group round-robin and filters by duty cycle;
        devices not due simply skip the round (their shifts stay idle —
        OOK '0's all round, which the receiver handles naturally).
        """
        if not self._groups:
            return []
        if self._backend == "flat":
            rows = self._group_rows[self._next_group]
            self._next_group = (self._next_group + 1) % len(self._groups)
            due = self._rst[rows] + 1 >= self._duty[rows]
            transmitting = self._ids[rows[due]].tolist()
            self._rst[rows[due]] = 0
            self._rst[rows[~due]] += 1
            outside = np.ones(self._ids.size, dtype=bool)
            outside[rows] = False
            self._rst[outside] += 1
            return transmitting
        group = self._groups[self._next_group]
        self._next_group = (self._next_group + 1) % len(self._groups)
        transmitting: List[int] = []
        for device_id in group:
            device = self._devices[device_id]
            if device.due():
                transmitting.append(device_id)
                device.rounds_since_tx = 0
            else:
                device.rounds_since_tx += 1
        # Devices outside the scheduled group also age their duty cycle.
        for device_id, device in self._devices.items():
            if device_id not in group:
                device.rounds_since_tx += 1
        return transmitting

    def group_of(self, device_id: int) -> int:
        """Group index of a device (the query's group ID)."""
        for index, group in enumerate(self._groups):
            if device_id in group:
                return index
        raise ProtocolError(f"device {device_id} is not scheduled")
