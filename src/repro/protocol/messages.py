"""AP query message and association frames (Fig. 11, Section 3.3.3).

The query is ASK-modulated at 160 kbps and contains:

* an 8-bit group ID selecting which device group transmits this round,
* an optional association response: 8-bit network ID + 8-bit cyclic
  shift (plus the requesting device's temporary identity),
* optionally a full-reassignment payload: an identifier for one of the
  256! shift orderings, log2(256!) <= 1700 bits.

Config 1 of the evaluation uses a bare 32-bit query; config 2 carries the
full 1760-bit reassignment each round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.constants import DOWNLINK_BITRATE_BPS
from repro.errors import ProtocolError
from repro.utils.bits import bits_to_int, int_to_bits

GROUP_ID_BITS = 8
NETWORK_ID_BITS = 8
CYCLIC_SHIFT_BITS = 8
HEADER_OVERHEAD_BITS = 24
"""Sync word, length field and CRC-8 framing around the query fields —
sized so a bare query is the paper's 32-bit config-1 message."""


def reassignment_payload_bits(n_devices: int) -> int:
    """Bits needed to name one of ``n_devices!`` shift orderings.

    ``ceil(log2(n!))``; for 256 devices this is 1684 <= 1700, padded to
    the paper's 1760-bit config-2 query (a whole number of bytes together
    with the header fields).
    """
    if n_devices < 1:
        raise ProtocolError("need at least one device")
    bits = math.ceil(
        sum(math.log2(k) for k in range(2, n_devices + 1))
    )
    return int(bits)


def encode_permutation(order: Sequence[int]) -> int:
    """Lehmer-encode a shift ordering into its factorial-number index.

    The AP transmits this single integer to announce a full reassignment;
    devices recover their new rank (and thus shift) by decoding it.
    """
    items = list(order)
    n = len(items)
    if sorted(items) != list(range(n)):
        raise ProtocolError("order must be a permutation of 0..n-1")
    index = 0
    available = list(range(n))
    for value in items:
        rank = available.index(value)
        index = index * len(available) + rank
        available.pop(rank)
    return index


def decode_permutation(index: int, n: int) -> List[int]:
    """Inverse of :func:`encode_permutation`."""
    if n < 1:
        raise ProtocolError("n must be >= 1")
    if index < 0 or index >= math.factorial(n):
        raise ProtocolError("index out of range for n!")
    digits = []
    for k in range(1, n + 1):
        digits.append(index % k)
        index //= k
    digits.reverse()
    available = list(range(n))
    return [available.pop(d) for d in digits]


@dataclass(frozen=True)
class AssociationResponse:
    """Optional query field granting a newcomer its identity and shift."""

    network_id: int
    cyclic_shift: int

    def __post_init__(self) -> None:
        if not 0 <= self.network_id < 2**NETWORK_ID_BITS:
            raise ProtocolError("network_id must fit in 8 bits")
        if not 0 <= self.cyclic_shift < 2**CYCLIC_SHIFT_BITS:
            raise ProtocolError(
                "cyclic shift field must fit in 8 bits (the shift is "
                "transmitted in SKIP-grid units)"
            )

    def to_bits(self) -> List[int]:
        return int_to_bits(self.network_id, NETWORK_ID_BITS) + int_to_bits(
            self.cyclic_shift, CYCLIC_SHIFT_BITS
        )

    @staticmethod
    def from_bits(bits: Sequence[int]) -> "AssociationResponse":
        if len(bits) != NETWORK_ID_BITS + CYCLIC_SHIFT_BITS:
            raise ProtocolError("association response must be 16 bits")
        return AssociationResponse(
            network_id=bits_to_int(bits[:NETWORK_ID_BITS]),
            cyclic_shift=bits_to_int(bits[NETWORK_ID_BITS:]),
        )


@dataclass
class QueryMessage:
    """One AP query (Fig. 11)."""

    group_id: int = 0
    association: Optional[AssociationResponse] = None
    reassignment_order: Optional[List[int]] = field(default=None)

    def __post_init__(self) -> None:
        if not 0 <= self.group_id < 2**GROUP_ID_BITS:
            raise ProtocolError("group_id must fit in 8 bits")

    @property
    def n_bits(self) -> int:
        """On-air length of this query."""
        bits = HEADER_OVERHEAD_BITS + GROUP_ID_BITS
        if self.association is not None:
            bits += NETWORK_ID_BITS + CYCLIC_SHIFT_BITS
        if self.reassignment_order is not None:
            bits += reassignment_payload_bits(len(self.reassignment_order))
        # Pad to whole bytes, as the 1760-bit config-2 length implies.
        return ((bits + 7) // 8) * 8

    @property
    def airtime_s(self) -> float:
        """Downlink duration at the 160 kbps ASK rate."""
        return self.n_bits / DOWNLINK_BITRATE_BPS

    def to_bits(self) -> List[int]:
        """Serialise the variable fields (header framing is abstract)."""
        bits = int_to_bits(self.group_id, GROUP_ID_BITS)
        bits.append(1 if self.association is not None else 0)
        if self.association is not None:
            bits.extend(self.association.to_bits())
        bits.append(1 if self.reassignment_order is not None else 0)
        if self.reassignment_order is not None:
            n = len(self.reassignment_order)
            width = reassignment_payload_bits(n)
            bits.extend(
                int_to_bits(encode_permutation(self.reassignment_order), width)
            )
        return bits


def parse_query_bits(
    bits: Sequence[int], n_reassignment_devices: Optional[int] = None
) -> QueryMessage:
    """Parse the serialised query fields back into a message.

    ``n_reassignment_devices`` must be supplied when a reassignment
    payload is present (devices know their group size).
    """
    bits = list(bits)
    if len(bits) < GROUP_ID_BITS + 2:
        raise ProtocolError("query too short")
    group_id = bits_to_int(bits[:GROUP_ID_BITS])
    cursor = GROUP_ID_BITS
    association = None
    if bits[cursor] == 1:
        cursor += 1
        field_len = NETWORK_ID_BITS + CYCLIC_SHIFT_BITS
        association = AssociationResponse.from_bits(
            bits[cursor : cursor + field_len]
        )
        cursor += field_len
    else:
        cursor += 1
    reassignment = None
    if bits[cursor] == 1:
        cursor += 1
        if n_reassignment_devices is None:
            raise ProtocolError(
                "reassignment present but device count unknown"
            )
        width = reassignment_payload_bits(n_reassignment_devices)
        index = bits_to_int(bits[cursor : cursor + width])
        reassignment = decode_permutation(index, n_reassignment_devices)
    return QueryMessage(
        group_id=group_id,
        association=association,
        reassignment_order=reassignment,
    )


def bare_query_bits() -> int:
    """Config-1 query length (32 bits)."""
    return QueryMessage().n_bits


def full_reassignment_query_bits(n_devices: int = 256) -> int:
    """Config-2 query length (~1760 bits for 256 devices)."""
    order = list(range(n_devices))
    return QueryMessage(reassignment_order=order).n_bits


@dataclass(frozen=True)
class AssociationRequest:
    """Uplink association request sent on a reserved cyclic shift."""

    temporary_id: int
    duty_cycle_code: int = 0

    def to_bits(self) -> List[int]:
        return int_to_bits(self.temporary_id, 16) + int_to_bits(
            self.duty_cycle_code, 8
        )

    @staticmethod
    def from_bits(bits: Sequence[int]) -> "AssociationRequest":
        if len(bits) != 24:
            raise ProtocolError("association request must be 24 bits")
        return AssociationRequest(
            temporary_id=bits_to_int(bits[:16]),
            duty_cycle_code=bits_to_int(bits[16:]),
        )


def shifts_as_assignment_map(
    ranked_device_ids: Sequence[int], shifts: Dict[int, int]
) -> List[int]:
    """Express an assignment as the rank permutation the query encodes."""
    order = sorted(
        range(len(ranked_device_ids)),
        key=lambda i: shifts[ranked_device_ids[i]],
    )
    return order
