"""Network association (Section 3.3.2, Fig. 10).

Association runs *concurrently* with data traffic: two cyclic shifts are
reserved — one in the high-SNR region, one in the low-SNR region — and a
joining device picks its region from the query RSSI. The AP measures the
newcomer's signal strength, allocates a shift through the power-aware
table, piggybacks the grant on the next query, and confirms on receiving
the Association ACK in the granted shift.

The controller inherits the allocation table's storage backend: on the
default flat backend the per-device association lifecycle (phase, grant
repeats, the frozen granted shift) lives in the population's columns
(:class:`repro.protocol.population.Population`) and a mass join is one
masked array update (:meth:`AssociationController.bulk_associate`); the
legacy ``PendingAssociation``-object path survives as
``backend="object"`` and the two are pinned bit-identical by the
equivalence suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import AllocationTable, association_shifts
from repro.core.config import NetScatterConfig
from repro.errors import AssociationError
from repro.protocol.messages import AssociationResponse
from repro.protocol.population import (
    PHASE_CONFIRMED,
    PHASE_GRANTED,
)


class AssociationPhase(enum.Enum):
    """AP-side lifecycle of one joining device."""

    REQUESTED = "requested"
    GRANTED = "granted"
    CONFIRMED = "confirmed"


@dataclass
class PendingAssociation:
    """AP-side record of an in-flight association (object backend)."""

    device_id: int
    snr_db: float
    phase: AssociationPhase = AssociationPhase.REQUESTED
    granted_shift: Optional[int] = None
    grant_repeats: int = 0


class AssociationController:
    """AP-side association state machine over an allocation table.

    The grant a device receives is *frozen at grant time*: later
    re-packs may move the device's data shift, but the pending grant
    keeps repeating the originally granted value until acknowledged
    (the device cannot learn a newer shift before it is a confirmed
    member). Both backends implement this — the flat path via the
    population's ``granted_shift`` column.
    """

    MAX_GRANT_REPEATS = 5

    def __init__(
        self, config: NetScatterConfig, backend: str = "flat"
    ) -> None:
        self._config = config
        self._table = AllocationTable(config, backend=backend)
        self._backend = self._table.backend
        self._pending: Dict[int, PendingAssociation] = {}
        self._assoc_shifts = association_shifts(config)

    @property
    def table(self) -> AllocationTable:
        return self._table

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def association_shifts(self) -> List[int]:
        """The reserved request shifts (high-SNR first)."""
        return list(self._assoc_shifts)

    def request_shift_for_rssi(
        self, query_rssi_dbm: float, low_threshold_dbm: float = -40.0
    ) -> int:
        """Which reserved shift a joining device should request on.

        Strong downlink -> the tag is near -> high-SNR region shift;
        weak -> low-SNR region shift. Mirrors the device-side choice.
        """
        if not self._assoc_shifts:
            raise AssociationError("configuration reserves no association shifts")
        if len(self._assoc_shifts) == 1:
            return self._assoc_shifts[0]
        if query_rssi_dbm >= low_threshold_dbm:
            return self._assoc_shifts[0]
        return self._assoc_shifts[1]

    def handle_request(
        self, device_id: int, measured_snr_db: float
    ) -> Tuple[AssociationResponse, bool]:
        """Process an association request heard on a reserved shift.

        Allocates a shift and returns the grant to piggyback on the next
        query, plus whether the admit displaced existing devices (needs a
        full-reassignment query).
        """
        if self._backend == "flat":
            pop = self._table.population
            if device_id in pop:
                row = pop.row_of(device_id)
                if pop.phase[row] == PHASE_GRANTED:
                    # Duplicate request: the grant was lost; repeat it.
                    return self._repeat_grant_flat(device_id), False
                if pop.phase[row] != PHASE_CONFIRMED:
                    raise AssociationError(
                        f"device {device_id} already mid-association"
                    )
            shift, reassigned = self._table.add_device(
                device_id, measured_snr_db
            )
            row = pop.row_of(device_id)
            pop.phase[row] = PHASE_GRANTED
            pop.granted_shift[row] = shift
            pop.grant_repeats[row] = 0
            return self._repeat_grant_flat(device_id), reassigned
        if device_id in self._pending:
            pending = self._pending[device_id]
            if pending.phase == AssociationPhase.GRANTED:
                # Duplicate request: the grant was lost; repeat it.
                return self._grant_message(pending), False
            raise AssociationError(
                f"device {device_id} already mid-association"
            )
        shift, reassigned = self._table.add_device(device_id, measured_snr_db)
        pending = PendingAssociation(
            device_id=device_id,
            snr_db=measured_snr_db,
            phase=AssociationPhase.GRANTED,
            granted_shift=shift,
        )
        self._pending[device_id] = pending
        return self._grant_message(pending), reassigned

    def _repeat_grant_flat(self, device_id: int) -> AssociationResponse:
        pop = self._table.population
        row = pop.row_of(device_id)
        pop.grant_repeats[row] += 1
        if pop.grant_repeats[row] > self.MAX_GRANT_REPEATS:
            # Abandon the join attempt; free the slot.
            self._table.remove_device(device_id)
            raise AssociationError(
                f"device {device_id} never acknowledged its grant"
            )
        return AssociationResponse(
            network_id=device_id % 256,
            cyclic_shift=int(pop.granted_shift[row]) // self._config.skip,
        )

    def _grant_message(self, pending: PendingAssociation) -> AssociationResponse:
        pending.grant_repeats += 1
        if pending.grant_repeats > self.MAX_GRANT_REPEATS:
            # Abandon the join attempt; free the slot.
            self._table.remove_device(pending.device_id)
            del self._pending[pending.device_id]
            raise AssociationError(
                f"device {pending.device_id} never acknowledged its grant"
            )
        return AssociationResponse(
            network_id=pending.device_id % 256,
            cyclic_shift=pending.granted_shift // self._config.skip,
        )

    def handle_ack(self, device_id: int) -> int:
        """Process the Association ACK; the device is now a member."""
        if self._backend == "flat":
            pop = self._table.population
            if (
                device_id not in pop
                or pop.phase[pop.row_of(device_id)] != PHASE_GRANTED
            ):
                raise AssociationError(
                    f"unexpected ACK from device {device_id}"
                )
            row = pop.row_of(device_id)
            pop.phase[row] = PHASE_CONFIRMED
            return int(pop.granted_shift[row])
        pending = self._pending.get(device_id)
        if pending is None or pending.phase != AssociationPhase.GRANTED:
            raise AssociationError(
                f"unexpected ACK from device {device_id}"
            )
        pending.phase = AssociationPhase.CONFIRMED
        del self._pending[device_id]
        return pending.granted_shift

    def bulk_associate(
        self,
        device_ids: Sequence[int],
        snrs_db: Sequence[float],
    ) -> Tuple[np.ndarray, bool]:
        """Run the full request -> grant -> ACK cycle for many devices.

        The mass-join fast path behind population-scale scenarios: every
        newcomer is admitted under one re-spread
        (:meth:`AllocationTable.bulk_add`), granted its slot and
        immediately confirmed — the lossless-downlink shortcut the
        protocol stats layer charges one query per device for. Returns
        ``(granted_shifts, reassigned)`` aligned to ``device_ids``.
        Identical decisions on both backends (each delegates to the same
        ``bulk_add``).
        """
        shifts, reassigned = self._table.bulk_add(device_ids, snrs_db)
        if self._backend == "flat":
            pop = self._table.population
            rows = np.array(
                [pop.row_of(int(d)) for d in device_ids], dtype=np.int64
            )
            pop.phase[rows] = PHASE_CONFIRMED
            pop.granted_shift[rows] = shifts
            pop.grant_repeats[rows] = 1
        return shifts, reassigned

    def handle_reassociation(
        self, device_id: int, new_snr_db: float
    ) -> bool:
        """A member re-initiates association after repeated power-control
        failures; the AP updates its SNR and re-packs if the rank moved."""
        return self._table.update_snr(device_id, new_snr_db)

    def pending_grants(self) -> List[AssociationResponse]:
        """Grants that still need repeating on upcoming queries."""
        if self._backend == "flat":
            pop = self._table.population
            rows = np.flatnonzero(pop.phase == PHASE_GRANTED)
            return [
                AssociationResponse(
                    network_id=int(pop.device_id[row]) % 256,
                    cyclic_shift=int(pop.granted_shift[row])
                    // self._config.skip,
                )
                for row in rows
            ]
        return [
            AssociationResponse(
                network_id=p.device_id % 256,
                cyclic_shift=p.granted_shift // self._config.skip,
            )
            for p in self._pending.values()
            if p.phase == AssociationPhase.GRANTED
        ]

    def assignments(self) -> Dict[int, int]:
        """Confirmed + granted shift map (granted devices already hold
        their slots so data devices cannot collide with them)."""
        return self._table.assignments()

    @property
    def n_members(self) -> int:
        if self._backend == "flat":
            pop = self._table.population
            n_pending = int(np.count_nonzero(pop.phase != PHASE_CONFIRMED))
            return self._table.n_devices - n_pending
        return self._table.n_devices - len(self._pending)
