"""Network association (Section 3.3.2, Fig. 10).

Association runs *concurrently* with data traffic: two cyclic shifts are
reserved — one in the high-SNR region, one in the low-SNR region — and a
joining device picks its region from the query RSSI. The AP measures the
newcomer's signal strength, allocates a shift through the power-aware
table, piggybacks the grant on the next query, and confirms on receiving
the Association ACK in the granted shift.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.allocation import AllocationTable, association_shifts
from repro.core.config import NetScatterConfig
from repro.errors import AssociationError
from repro.protocol.messages import AssociationResponse


class AssociationPhase(enum.Enum):
    """AP-side lifecycle of one joining device."""

    REQUESTED = "requested"
    GRANTED = "granted"
    CONFIRMED = "confirmed"


@dataclass
class PendingAssociation:
    """AP-side record of an in-flight association."""

    device_id: int
    snr_db: float
    phase: AssociationPhase = AssociationPhase.REQUESTED
    granted_shift: Optional[int] = None
    grant_repeats: int = 0


class AssociationController:
    """AP-side association state machine over an allocation table."""

    MAX_GRANT_REPEATS = 5

    def __init__(self, config: NetScatterConfig) -> None:
        self._config = config
        self._table = AllocationTable(config)
        self._pending: Dict[int, PendingAssociation] = {}
        self._assoc_shifts = association_shifts(config)

    @property
    def table(self) -> AllocationTable:
        return self._table

    @property
    def association_shifts(self) -> List[int]:
        """The reserved request shifts (high-SNR first)."""
        return list(self._assoc_shifts)

    def request_shift_for_rssi(
        self, query_rssi_dbm: float, low_threshold_dbm: float = -40.0
    ) -> int:
        """Which reserved shift a joining device should request on.

        Strong downlink -> the tag is near -> high-SNR region shift;
        weak -> low-SNR region shift. Mirrors the device-side choice.
        """
        if not self._assoc_shifts:
            raise AssociationError("configuration reserves no association shifts")
        if len(self._assoc_shifts) == 1:
            return self._assoc_shifts[0]
        if query_rssi_dbm >= low_threshold_dbm:
            return self._assoc_shifts[0]
        return self._assoc_shifts[1]

    def handle_request(
        self, device_id: int, measured_snr_db: float
    ) -> Tuple[AssociationResponse, bool]:
        """Process an association request heard on a reserved shift.

        Allocates a shift and returns the grant to piggyback on the next
        query, plus whether the admit displaced existing devices (needs a
        full-reassignment query).
        """
        if device_id in self._pending:
            pending = self._pending[device_id]
            if pending.phase == AssociationPhase.GRANTED:
                # Duplicate request: the grant was lost; repeat it.
                return self._grant_message(pending), False
            raise AssociationError(
                f"device {device_id} already mid-association"
            )
        shift, reassigned = self._table.add_device(device_id, measured_snr_db)
        pending = PendingAssociation(
            device_id=device_id,
            snr_db=measured_snr_db,
            phase=AssociationPhase.GRANTED,
            granted_shift=shift,
        )
        self._pending[device_id] = pending
        return self._grant_message(pending), reassigned

    def _grant_message(self, pending: PendingAssociation) -> AssociationResponse:
        pending.grant_repeats += 1
        if pending.grant_repeats > self.MAX_GRANT_REPEATS:
            # Abandon the join attempt; free the slot.
            self._table.remove_device(pending.device_id)
            del self._pending[pending.device_id]
            raise AssociationError(
                f"device {pending.device_id} never acknowledged its grant"
            )
        return AssociationResponse(
            network_id=pending.device_id % 256,
            cyclic_shift=pending.granted_shift // self._config.skip,
        )

    def handle_ack(self, device_id: int) -> int:
        """Process the Association ACK; the device is now a member."""
        pending = self._pending.get(device_id)
        if pending is None or pending.phase != AssociationPhase.GRANTED:
            raise AssociationError(
                f"unexpected ACK from device {device_id}"
            )
        pending.phase = AssociationPhase.CONFIRMED
        del self._pending[device_id]
        return pending.granted_shift

    def handle_reassociation(
        self, device_id: int, new_snr_db: float
    ) -> bool:
        """A member re-initiates association after repeated power-control
        failures; the AP updates its SNR and re-packs if the rank moved."""
        return self._table.update_snr(device_id, new_snr_db)

    def pending_grants(self) -> List[AssociationResponse]:
        """Grants that still need repeating on upcoming queries."""
        return [
            AssociationResponse(
                network_id=p.device_id % 256,
                cyclic_shift=p.granted_shift // self._config.skip,
            )
            for p in self._pending.values()
            if p.phase == AssociationPhase.GRANTED
        ]

    def assignments(self) -> Dict[int, int]:
        """Confirmed + granted shift map (granted devices already hold
        their slots so data devices cannot collide with them)."""
        return self._table.assignments()

    @property
    def n_members(self) -> int:
        return self._table.n_devices - len(self._pending)
