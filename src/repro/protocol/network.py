"""Network-level simulator: concurrent rounds over a deployment.

Executes the paper's evaluation loop (Section 4.4): associate a
deployment's devices, run query/response rounds with the fast PHY path
(tones with per-packet jitter/CFO, AWGN), decode with the single-FFT
receiver, and account air time — producing the network PHY rate,
link-layer rate and latency series of Figs. 17-19.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.airtime import netscatter_round_airtime_s
from repro.channel.awgn import awgn_rounds
from repro.channel.deployment import Deployment
from repro.constants import PAYLOAD_CRC_BITS, QUERY_BITS_CONFIG1
from repro.core.allocation import power_aware_allocation
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_rounds
from repro.core.receiver import NetScatterReceiver
from repro.errors import ConfigurationError
from repro.hardware.mcu import McuTimingModel
from repro.hardware.oscillator import tag_oscillator
from repro.phy.packet import PacketStructure
from repro.utils.rng import RngLike, child_rng, make_rng


@dataclass
class RoundResult:
    """Outcome of one concurrent round."""

    n_devices: int
    airtime: object
    sent_bits: Dict[int, List[int]] = field(default_factory=dict)
    received_bits: Dict[int, List[int]] = field(default_factory=dict)
    detected: Dict[int, bool] = field(default_factory=dict)

    @property
    def total_bits_sent(self) -> int:
        return sum(len(b) for b in self.sent_bits.values())

    @property
    def total_bits_correct(self) -> int:
        correct = 0
        for device_id, sent in self.sent_bits.items():
            got = self.received_bits.get(device_id, [])
            correct += sum(
                1 for s, g in zip(sent, got) if s == g
            )
        return correct

    @property
    def packets_delivered(self) -> int:
        """Packets with every bit correct (CRC would pass)."""
        delivered = 0
        for device_id, sent in self.sent_bits.items():
            got = self.received_bits.get(device_id, [])
            if len(got) == len(sent) and all(
                s == g for s, g in zip(sent, got)
            ):
                delivered += 1
        return delivered

    @property
    def bit_error_rate(self) -> float:
        total = self.total_bits_sent
        if total == 0:
            return 0.0
        return 1.0 - self.total_bits_correct / total

    @property
    def delivery_ratio(self) -> float:
        if self.n_devices == 0:
            return 1.0
        return self.packets_delivered / self.n_devices


@dataclass
class NetworkMetrics:
    """Aggregated metrics over several rounds (one sweep point)."""

    n_devices: int
    phy_rate_bps: float
    link_layer_rate_bps: float
    latency_s: float
    delivery_ratio: float
    bit_error_rate: float


class NetworkSimulator:
    """Round-based NetScatter network simulation over a deployment."""

    def __init__(
        self,
        deployment: Deployment,
        config: Optional[NetScatterConfig] = None,
        payload_bits: int = PAYLOAD_CRC_BITS,
        query_bits: int = QUERY_BITS_CONFIG1,
        reference_snr_scale_db: float = 0.0,
        power_control: bool = True,
        rng: RngLike = None,
    ) -> None:
        if config is None:
            # The deployment experiments run all 256 devices concurrently;
            # association shifts are not reserved during the data phase.
            config = NetScatterConfig(n_association_shifts=0)
        if deployment.n_devices > config.max_devices:
            raise ConfigurationError(
                f"deployment has {deployment.n_devices} devices; "
                f"config supports {config.max_devices}"
            )
        self._deployment = deployment
        self._config = config
        self._params = config.chirp_params
        self._payload_bits = int(payload_bits)
        self._query_bits = int(query_bits)
        self._scale_db = float(reference_snr_scale_db)
        self._power_control = bool(power_control)
        self._rng = make_rng(rng)
        self._structure = PacketStructure(payload_bits=self._payload_bits)

        # Per-device impairment models (fixed per device, drawn per packet).
        self._timing = McuTimingModel()
        self._oscillators = []
        for index, _ in enumerate(deployment.devices):
            osc = tag_oscillator()
            osc.calibrate(child_rng(self._rng, index))
            self._oscillators.append(osc)

        snrs = [d.uplink_snr_db + self._scale_db for d in deployment.devices]
        self._base_snrs = snrs
        self._gains_db = self._initial_power_gains(snrs)
        self._assignments = power_aware_allocation(
            [s + g for s, g in zip(snrs, self._gains_db)], config
        )
        self._receiver = NetScatterReceiver(config, self._assignments)

    @property
    def config(self) -> NetScatterConfig:
        return self._config

    @property
    def assignments(self) -> Dict[int, int]:
        return dict(self._assignments)

    def effective_snrs_db(self) -> List[float]:
        """Per-device SNR after the power-control gain."""
        return [s + g for s, g in zip(self._base_snrs, self._gains_db)]

    def _initial_power_gains(self, snrs: Sequence[float]) -> List[float]:
        """Coarse power pre-conditioning at association.

        Strong devices back off toward the population so the network fits
        the tolerable dynamic range: each device picks the discrete gain
        (0 / -4 / -10 dB) that brings it closest to the weakest device
        plus the practical 35 dB window.
        """
        from repro.constants import (
            DYNAMIC_RANGE_PRACTICE_DB,
            POWER_GAIN_LEVELS_DB,
        )

        if not self._power_control:
            return [0.0] * len(snrs)
        floor = min(snrs)
        ceiling = floor + DYNAMIC_RANGE_PRACTICE_DB
        gains = []
        for snr in snrs:
            best_gain = 0.0
            for gain in POWER_GAIN_LEVELS_DB:
                if snr + gain <= ceiling:
                    best_gain = gain
                    break
            gains.append(best_gain)
        return gains

    # ------------------------------------------------------------------ #
    # round execution
    # ------------------------------------------------------------------ #

    def _draw_round_inputs(self, fading: bool):
        """Draw one round's composition inputs (bins, amps, phases, bits).

        Kept sequential because the fading processes are Markov state
        stepped round by round; everything downstream of the draws is
        batched across rounds.
        """
        effective = self.effective_snrs_db()
        if fading:
            effective = [
                e + dev.step_channel(0.06, self._rng) - dev.uplink_snr_db
                for e, dev in zip(effective, self._deployment.devices)
            ]
        # Reference device: the weakest. Its amplitude is 1.0 and the
        # channel noise realises its SNR; others scale up from there.
        floor_snr = min(effective)
        rel_gains_db = np.asarray(effective) - floor_snr

        n_devices = self._deployment.n_devices
        params = self._params
        delays = self._timing.sample_latencies_s(n_devices, self._rng)
        # The receiver synchronises to the concurrent preamble, which
        # locks onto the population's common-mode delay; only per-device
        # deviations from it survive as residual bin offsets.
        delays = delays - delays.mean()
        cfos = np.array(
            [osc.offset_hz(self._rng) for osc in self._oscillators]
        )
        effective_bins = (
            np.array(
                [self._assignments[i] for i in range(n_devices)],
                dtype=float,
            )
            - delays * params.bandwidth_hz
            + cfos * params.n_samples / params.bandwidth_hz
        )
        amplitudes = 10.0 ** (rel_gains_db / 20.0)
        phases = self._rng.uniform(0.0, 2.0 * np.pi, size=n_devices)
        payload_bits = self._rng.integers(
            0, 2, size=(self._payload_bits, n_devices)
        )
        return effective_bins, amplitudes, phases, payload_bits, floor_snr

    def _run_batch(self, n_rounds: int, fading: bool):
        """Compose, noise-load and decode ``n_rounds`` in one batch.

        Returns ``(decode, payload_tensor, floor_snrs)`` where ``decode``
        is the engine's :class:`RoundsDecode` and ``payload_tensor`` is
        ``(n_rounds, payload_bits, n_devices)``.
        """
        draws = [self._draw_round_inputs(fading) for _ in range(n_rounds)]
        bins = np.stack([d[0] for d in draws])
        amplitudes = np.stack([d[1] for d in draws])
        phases = np.stack([d[2] for d in draws])
        payload = np.stack([d[3] for d in draws])
        floors = np.array([d[4] for d in draws])

        n_devices = self._deployment.n_devices
        n_preamble = self._structure.n_preamble_upchirps
        bit_tensor = np.ones(
            (n_rounds, n_preamble + self._payload_bits, n_devices)
        )
        bit_tensor[:, n_preamble:] = payload

        symbols = compose_rounds(
            self._params, bins, amplitudes, phases, bit_tensor
        )
        noisy = awgn_rounds(symbols, floors, self._rng)
        decode = self._receiver.decode_rounds(
            noisy, n_preamble_upchirps=n_preamble
        )
        return decode, payload, floors

    def run_round(self, fading: bool = False) -> RoundResult:
        """One full concurrent round: compose, add noise, decode, account.

        SNR convention: the weakest *effective* device defines the noise
        level (its amplitude is the reference at its SNR); every other
        device's amplitude follows from its SNR relative to that.
        """
        decode, payload, _ = self._run_batch(1, fading)
        frame = decode.frame(0)
        airtime = netscatter_round_airtime_s(
            self._config, self._query_bits, self._structure
        )
        result = RoundResult(
            n_devices=self._deployment.n_devices, airtime=airtime
        )
        for index, device in enumerate(self._deployment.devices):
            result.sent_bits[device.device_id] = payload[
                0, :, index
            ].tolist()
            dec = frame.devices[index]
            result.detected[device.device_id] = dec.detected
            result.received_bits[device.device_id] = list(dec.bits)
        return result

    def run_rounds(self, n_rounds: int, fading: bool = False) -> NetworkMetrics:
        """Run several rounds and aggregate into the Fig. 17-19 metrics.

        All rounds flow through the batched decode engine; the per-round
        scoring is vectorised (a bit counts only when its device's
        preamble was detected, matching the per-round decoder's empty
        bit list for undetected devices).
        """
        if n_rounds < 1:
            raise ConfigurationError("need at least one round")
        decode, payload, _ = self._run_batch(n_rounds, fading)
        # The engine's columns follow the assignment order, which the
        # power-aware allocator does not keep in device-index order;
        # realign them with the payload tensor's device-index columns.
        columns = np.array(
            [
                decode.column_of(i)
                for i in range(self._deployment.n_devices)
            ],
            dtype=int,
        )
        detected = decode.detected[:, columns]  # (R, D)
        match = decode.bits[:, :, columns] == payload.astype(np.uint8)
        total_correct = int(np.sum(match & detected[:, None, :]))
        total_sent = int(payload.size)
        delivered = int(np.sum(detected & match.all(axis=1)))
        airtime = netscatter_round_airtime_s(
            self._config, self._query_bits, self._structure
        )
        n = self._deployment.n_devices
        delivery = delivered / (n * n_rounds)
        ber = 1.0 - total_correct / total_sent if total_sent else 0.0
        goodput_bits_per_round = (total_correct / n_rounds)
        phy_rate = goodput_bits_per_round / airtime.payload_s
        link_rate = goodput_bits_per_round / airtime.total_s
        return NetworkMetrics(
            n_devices=n,
            phy_rate_bps=phy_rate,
            link_layer_rate_bps=link_rate,
            latency_s=airtime.total_s,
            delivery_ratio=delivery,
            bit_error_rate=ber,
        )


def sweep_device_counts(
    deployment: Deployment,
    device_counts: Sequence[int],
    config: Optional[NetScatterConfig] = None,
    n_rounds: int = 3,
    query_bits: int = QUERY_BITS_CONFIG1,
    rng: RngLike = None,
) -> List[NetworkMetrics]:
    """Fig. 17-19 sweep: metrics at each device count."""
    generator = make_rng(rng)
    metrics = []
    for count in device_counts:
        sim = NetworkSimulator(
            deployment.subset(count),
            config=config,
            query_bits=query_bits,
            rng=child_rng(generator, count),
        )
        metrics.append(sim.run_rounds(n_rounds))
    return metrics
