"""Network-level simulator: concurrent rounds over a deployment.

Executes the paper's evaluation loop (Section 4.4): associate a
deployment's devices, run query/response rounds with the fast PHY path
(tones with per-packet jitter/CFO, AWGN), decode with the single-FFT
receiver, and account air time — producing the network PHY rate,
link-layer rate and latency series of Figs. 17-19.

Three PHY engines are available per simulator:

* ``"analytic"`` (default) — every round is a tone sum, so the whole
  compose -> dechirp -> readout chain is evaluated in closed form at
  the receiver's readout bins (:meth:`NetScatterReceiver.decode_readout`)
  with exact readout-domain AWGN; no waveform tensor is materialised
  and the sparse-readout operator is never built.
* ``"auto"`` — the occupancy-adaptive engine: each batch goes through
  :meth:`NetScatterReceiver.decode_readout` under ``readout="auto"``,
  which lets the host-calibrated cost model
  (:mod:`repro.phy.backend_plan`) pick the cheapest spectral backend
  for the batch's device count (closed-form kernel at small occupancy,
  padded FFT near full occupancy). Decisions are bit-identical to the
  fixed engines; the chosen backend is recorded on the results.
* ``"time"`` — the reference path: :func:`compose_rounds` waveform
  tensors, time-domain AWGN, batched sparse readout. Decisions match
  the analytic engine bit for bit on noiseless inputs (the equivalence
  suite pins this); under noise the two draw statistically identical
  AWGN through different mechanisms.

Where the noise enters differs per engine, and the engine-injected
variant is *versioned*: the ``"analytic"``/``"auto"`` engines draw
readout-domain AWGN from a :class:`repro.phy.noise.NoiseStream` whose
``noise_mode`` selects the draw layout — ``"payload"`` (stream version
2, default: located ``±1`` payload bins only) or ``"full"`` (version 1,
every readout bin, bit-identical to the historical draws) — while the
``"time"`` engine adds AWGN over the waveform tensor before decoding
(its decodes are stamped ``noise_mode="none"``). The stream used is
recorded on ``NetworkMetrics.noise_mode`` / ``noise_version`` next to
``backend``, so sweep outputs are reproducible from their seeds alone.
See ``docs/ARCHITECTURE.md`` for the full data-flow picture.

Fading rounds are batched like everything else: the per-device AR(1)
shadow-fading tracks advance ``n_rounds`` at a time through
:func:`repro.channel.fading.step_tracks` (same draws, one generator
call) and enter the composition as per-round amplitude rows and
per-round noise floors — no per-round Python loop. The legacy
round-by-round draw survives as ``fading_mode="per_round"`` for
benchmarking and statistical-equivalence tests.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.airtime import RoundAirtime, netscatter_round_airtime_s
from repro.channel.awgn import awgn_rounds
from repro.channel.deployment import Deployment
from repro.constants import PAYLOAD_CRC_BITS, QUERY_BITS_CONFIG1
from repro.core.allocation import power_aware_allocation
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_rounds
from repro.core.receiver import NetScatterReceiver, RoundsDecode
from repro.errors import ConfigurationError
from repro.hardware.mcu import McuTimingModel
from repro.phy.noise import NOISE_MODES
from repro.hardware.oscillator import calibrate_population, tag_oscillator
from repro.phy.packet import PacketStructure
from repro.utils.rng import RngLike, child_rng, make_rng

#: Engine names accepted by :class:`NetworkSimulator` and the sweeps.
ENGINES = ("analytic", "auto", "time")

#: Wall-clock spacing assumed between fading rounds (seconds): the
#: AR(1) tracks step by this much per round on both fading paths.
FADING_ROUND_INTERVAL_S = 0.06


@dataclass
class RoundResult:
    """Outcome of one concurrent round."""

    n_devices: int
    airtime: RoundAirtime
    sent_bits: Dict[int, List[int]] = field(default_factory=dict)
    received_bits: Dict[int, List[int]] = field(default_factory=dict)
    detected: Dict[int, bool] = field(default_factory=dict)
    #: Spectral backend that decoded this round ("analytic"/"sparse"/"fft").
    backend: str = ""
    #: Engine-noise stream that decoded this round ("payload"/"full",
    #: or "none" when the noise entered the input tensor instead —
    #: the time engine) and its version (see repro.phy.noise).
    noise_mode: str = ""
    noise_version: int = 0

    @property
    def total_bits_sent(self) -> int:
        return sum(len(b) for b in self.sent_bits.values())

    @property
    def total_bits_correct(self) -> int:
        correct = 0
        for device_id, sent in self.sent_bits.items():
            got = self.received_bits.get(device_id, [])
            correct += sum(
                1 for s, g in zip(sent, got) if s == g
            )
        return correct

    @property
    def packets_delivered(self) -> int:
        """Packets with every bit correct (CRC would pass)."""
        delivered = 0
        for device_id, sent in self.sent_bits.items():
            got = self.received_bits.get(device_id, [])
            if len(got) == len(sent) and all(
                s == g for s, g in zip(sent, got)
            ):
                delivered += 1
        return delivered

    @property
    def bit_error_rate(self) -> float:
        total = self.total_bits_sent
        if total == 0:
            return 0.0
        return 1.0 - self.total_bits_correct / total

    @property
    def delivery_ratio(self) -> float:
        if self.n_devices == 0:
            return 1.0
        return self.packets_delivered / self.n_devices


@dataclass
class NetworkMetrics:
    """Aggregated metrics over several rounds (one sweep point).

    ``goodput_bits_per_round`` is the raw per-round correct-bit count the
    rates derive from; drivers that account the same decode under several
    query costs (Fig. 18's config 1 vs 2) reuse it instead of re-running
    the PHY.
    """

    n_devices: int
    phy_rate_bps: float
    link_layer_rate_bps: float
    latency_s: float
    delivery_ratio: float
    bit_error_rate: float
    goodput_bits_per_round: float = 0.0
    #: Spectral backend that decoded the batch — makes sweep outputs
    #: self-describing under the occupancy-adaptive ``"auto"`` engine.
    backend: str = ""
    #: Engine-noise stream of the batch ("payload" version 2 by
    #: default; "none"/0 under the time engine, whose AWGN is added to
    #: the waveform tensor before the decode ever sees it).
    noise_mode: str = ""
    noise_version: int = 0


def _as_deployment(deployment) -> Deployment:
    """Accept a :class:`Deployment` or a flat population.

    The population layer (:class:`repro.protocol.population.Population`)
    hands its effective-SNR column straight to the engine: a population
    becomes a static no-fading deployment via
    :meth:`Deployment.from_snrs` (its ``snr_db`` column is *post*
    power-control by convention, so callers pair it with
    ``power_control=False``). A raw 1-D SNR array is accepted the same
    way; an existing deployment passes through untouched.
    """
    if isinstance(deployment, Deployment):
        return deployment
    from repro.protocol.population import Population

    if isinstance(deployment, Population):
        return Deployment.from_snrs(
            deployment.snr_db, device_ids=deployment.device_id.tolist()
        )
    if isinstance(deployment, (list, tuple, np.ndarray)):
        return Deployment.from_snrs(np.asarray(deployment, dtype=float))
    return deployment


class NetworkSimulator:
    """Round-based NetScatter network simulation over a deployment.

    Parameters
    ----------
    engine:
        ``"analytic"`` (default) decodes every round through the
        waveform-free Dirichlet-kernel path with readout-domain AWGN;
        ``"auto"`` additionally lets the calibrated backend planner
        switch to the sparse-matmul or padded-FFT readout when the
        occupancy makes them cheaper (same decisions, recorded in
        ``RoundResult.backend`` / ``NetworkMetrics.backend``);
        ``"time"`` composes full time-domain tensors and adds AWGN over
        them (the reference path).
    readout_dtype:
        Optional complex dtype of the analytic readout matmuls —
        ``numpy.complex64`` halves kernel cost/memory for very large
        device counts. ``None`` keeps full double precision.
    fading_mode:
        ``"batched"`` (default) advances every device's fading track a
        whole batch at a time (:func:`repro.channel.fading.step_tracks`)
        so fading rounds flow through the batched engines like static
        ones; ``"per_round"`` keeps the legacy execution — each fading
        round drawn *and decoded* on its own, Markov state stepped
        between rounds — as the reference for statistical equivalence
        and the benchmark baseline.
    noise_mode:
        Engine-noise stream of the ``"analytic"``/``"auto"`` engines
        (see :class:`repro.core.receiver.NetScatterReceiver`):
        ``"payload"`` (default, stream version 2) draws payload noise
        only at each device's located ``±1`` bins, ``"full"`` (version
        1) reproduces the historical all-bin draws bit for bit. The
        ``"time"`` engine adds its AWGN to the waveform tensor instead,
        so its decodes are stamped ``noise_mode="none"``/version 0.
        The stream actually used is recorded on
        :attr:`NetworkMetrics.noise_mode` / ``noise_version``.
    """

    def __init__(
        self,
        deployment: Deployment,
        config: Optional[NetScatterConfig] = None,
        payload_bits: int = PAYLOAD_CRC_BITS,
        query_bits: int = QUERY_BITS_CONFIG1,
        reference_snr_scale_db: float = 0.0,
        power_control: bool = True,
        rng: RngLike = None,
        engine: str = "analytic",
        readout_dtype=None,
        fading_mode: str = "batched",
        noise_mode: str = "payload",
    ) -> None:
        if engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if fading_mode not in ("batched", "per_round"):
            raise ConfigurationError(
                "fading_mode must be 'batched' or 'per_round', "
                f"got {fading_mode!r}"
            )
        if noise_mode not in NOISE_MODES:
            raise ConfigurationError(
                f"noise_mode must be one of {NOISE_MODES}, "
                f"got {noise_mode!r}"
            )
        if config is None:
            # The deployment experiments run all 256 devices concurrently;
            # association shifts are not reserved during the data phase.
            config = NetScatterConfig(n_association_shifts=0)
        deployment = _as_deployment(deployment)
        if deployment.n_devices > config.max_devices:
            raise ConfigurationError(
                f"deployment has {deployment.n_devices} devices; "
                f"config supports {config.max_devices}"
            )
        self._deployment = deployment
        self._config = config
        self._params = config.chirp_params
        self._payload_bits = int(payload_bits)
        self._query_bits = int(query_bits)
        self._scale_db = float(reference_snr_scale_db)
        self._power_control = bool(power_control)
        self._rng = make_rng(rng)
        self._engine = engine
        self._readout_dtype = readout_dtype
        self._fading_mode = fading_mode
        self._structure = PacketStructure(payload_bits=self._payload_bits)

        # Per-device impairment models (fixed per device, drawn per packet).
        self._timing = McuTimingModel()
        self._oscillators = [tag_oscillator() for _ in deployment.devices]
        calibrate_population(self._oscillators, self._rng)

        snrs = [d.uplink_snr_db + self._scale_db for d in deployment.devices]
        self._base_snrs = snrs
        self._gains_db = self._initial_power_gains(snrs)
        self._assignments = power_aware_allocation(
            [s + g for s, g in zip(snrs, self._gains_db)], config
        )
        readout = {"analytic": "analytic", "auto": "auto"}.get(
            engine, "sparse"
        )
        self._noise_mode = noise_mode
        self._receiver = NetScatterReceiver(
            config, self._assignments, readout=readout,
            noise_mode=noise_mode,
        )

    @property
    def config(self) -> NetScatterConfig:
        return self._config

    @property
    def assignments(self) -> Dict[int, int]:
        return dict(self._assignments)

    def effective_snrs_db(self) -> List[float]:
        """Per-device SNR after the power-control gain."""
        return [s + g for s, g in zip(self._base_snrs, self._gains_db)]

    def _initial_power_gains(self, snrs: Sequence[float]) -> List[float]:
        """Coarse power pre-conditioning at association.

        Strong devices back off toward the population so the network fits
        the tolerable dynamic range: each device picks the discrete gain
        (0 / -4 / -10 dB) that brings it closest to the weakest device
        plus the practical 35 dB window.
        """
        from repro.constants import (
            DYNAMIC_RANGE_PRACTICE_DB,
            POWER_GAIN_LEVELS_DB,
        )

        if not self._power_control:
            return [0.0] * len(snrs)
        floor = min(snrs)
        ceiling = floor + DYNAMIC_RANGE_PRACTICE_DB
        gains = []
        for snr in snrs:
            best_gain = 0.0
            for gain in POWER_GAIN_LEVELS_DB:
                if snr + gain <= ceiling:
                    best_gain = gain
                    break
            gains.append(best_gain)
        return gains

    # ------------------------------------------------------------------ #
    # round execution
    # ------------------------------------------------------------------ #

    def _draw_round_inputs(self, fading: bool):
        """Draw one round's composition inputs (bins, amps, phases, bits).

        Only ``fading_mode="per_round"`` still uses this form: it is the
        legacy reference the batched fading path is validated against
        (and the baseline the fading benchmark measures). All other
        batches draw everything at once in :meth:`_draw_batch_inputs`.
        """
        effective = self.effective_snrs_db()
        if fading:
            effective = [
                e
                + dev.step_channel(FADING_ROUND_INTERVAL_S, self._rng)
                - dev.uplink_snr_db
                for e, dev in zip(effective, self._deployment.devices)
            ]
        # Reference device: the weakest. Its amplitude is 1.0 and the
        # channel noise realises its SNR; others scale up from there.
        floor_snr = min(effective)
        rel_gains_db = np.asarray(effective) - floor_snr

        n_devices = self._deployment.n_devices
        params = self._params
        delays = self._timing.sample_latencies_s(n_devices, self._rng)
        # The receiver synchronises to the concurrent preamble, which
        # locks onto the population's common-mode delay; only per-device
        # deviations from it survive as residual bin offsets.
        delays = delays - delays.mean()
        cfos = np.array(
            [osc.offset_hz(self._rng) for osc in self._oscillators]
        )
        effective_bins = (
            np.array(
                [self._assignments[i] for i in range(n_devices)],
                dtype=float,
            )
            - delays * params.bandwidth_hz
            + cfos * params.n_samples / params.bandwidth_hz
        )
        amplitudes = 10.0 ** (rel_gains_db / 20.0)
        phases = self._rng.uniform(0.0, 2.0 * np.pi, size=n_devices)
        payload_bits = self._rng.integers(
            0, 2, size=(self._payload_bits, n_devices)
        )
        return effective_bins, amplitudes, phases, payload_bits, floor_snr

    def _fading_effective_snrs_db(self, n_rounds: int) -> np.ndarray:
        """``(n_rounds, n_devices)`` effective SNRs under batched fading.

        Every device's AR(1) track advances ``n_rounds`` steps in one
        vectorised pass (:func:`repro.channel.fading.step_tracks`);
        devices without a fading process keep their static SNR and —
        matching the per-round path — consume no generator draws.
        """
        from repro.channel.fading import step_tracks

        devices = self._deployment.devices
        processes = [d.fading for d in devices]
        present = [p is not None for p in processes]
        tracks = np.tile(
            np.array([d.uplink_snr_db for d in devices]), (n_rounds, 1)
        )
        if any(present):
            faded = step_tracks(
                [p for p in processes if p is not None],
                FADING_ROUND_INTERVAL_S,
                n_rounds,
                self._rng,
            )
            tracks[:, np.array(present)] = faded
        # Same convention as the per-round path: the fading track
        # replaces the device's base SNR, while the experiment-level
        # reference scale and the power-control gain ride on top.
        return tracks + self._scale_db + np.asarray(self._gains_db)[None, :]

    def _draw_batch_inputs(self, n_rounds: int, fading: bool):
        """Draw a whole batch's composition inputs in vectorised form.

        Returns ``(bins, amplitudes, phases, payload, floors)`` with
        round-major shapes. Jitter/CFO/phases/bits are always drawn as
        single ``(rounds, devices)`` batches; fading adds per-round
        amplitude rows and noise floors from the batched AR(1) tracks
        (statistically identical to — and validated against — the
        legacy ``fading_mode="per_round"`` execution, which draws each
        round through :meth:`_draw_round_inputs`).
        """
        if fading and self._fading_mode == "per_round":
            draws = [self._draw_round_inputs(True) for _ in range(n_rounds)]
            return (
                np.stack([d[0] for d in draws]),
                np.stack([d[1] for d in draws]),
                np.stack([d[2] for d in draws]),
                np.stack([d[3] for d in draws]),
                np.array([d[4] for d in draws]),
            )
        if fading:
            effective = self._fading_effective_snrs_db(n_rounds)
            floors = effective.min(axis=1)
            rel_gains_db = effective - floors[:, None]
        else:
            static = np.asarray(self.effective_snrs_db())
            floor_snr = float(static.min())
            rel_gains_db = static - floor_snr
            floors = np.full(n_rounds, floor_snr)

        n_devices = self._deployment.n_devices
        params = self._params
        delays = self._timing.sample_latencies_s(
            (n_rounds, n_devices), self._rng
        )
        delays = delays - delays.mean(axis=1, keepdims=True)
        cut_ppm = np.array([o.cut_error_ppm for o in self._oscillators])
        drift_ppm = self._rng.standard_normal(
            (n_rounds, n_devices)
        ) * np.array([o.drift_ppm_std for o in self._oscillators])
        nominal_hz = np.array(
            [o.nominal_freq_hz for o in self._oscillators]
        )
        cfos = (cut_ppm[None, :] + drift_ppm) * 1e-6 * nominal_hz[None, :]
        shifts = np.array(
            [self._assignments[i] for i in range(n_devices)], dtype=float
        )
        bins = (
            shifts[None, :]
            - delays * params.bandwidth_hz
            + cfos * params.n_samples / params.bandwidth_hz
        )
        amplitudes = np.broadcast_to(
            10.0 ** (rel_gains_db / 20.0), (n_rounds, n_devices)
        )
        phases = self._rng.uniform(
            0.0, 2.0 * np.pi, size=(n_rounds, n_devices)
        )
        payload = self._rng.integers(
            0, 2, size=(n_rounds, self._payload_bits, n_devices)
        )
        return bins, amplitudes, phases, payload, floors

    def _run_batch(
        self, n_rounds: int, fading: bool
    ) -> Tuple[RoundsDecode, np.ndarray, np.ndarray]:
        """Compose, noise-load and decode ``n_rounds`` in one batch.

        Returns ``(decode, payload_tensor, floor_snrs)`` where ``decode``
        is the engine's :class:`RoundsDecode` and ``payload_tensor`` is
        ``(n_rounds, payload_bits, n_devices)``. The ``"analytic"`` and
        ``"auto"`` engines never materialise a waveform up front: the
        tone parameters go straight to
        :meth:`NetScatterReceiver.decode_readout` with the channel AWGN
        injected at the readout bins (under ``"auto"`` the receiver's
        planner may still synthesise the tensor when the padded FFT is
        the cheaper readout); the ``"time"`` engine composes the full
        tensor and adds time-domain noise.

        ``fading_mode="per_round"`` executes fading batches the legacy
        way — one single-round draw + decode per round, Markov state
        stepped in between — and concatenates the per-round decodes, so
        the batched path has an in-tree reference (and the fading
        benchmark a baseline) with identical per-round semantics.
        """
        if fading and self._fading_mode == "per_round" and n_rounds > 1:
            parts = [self._run_batch(1, True) for _ in range(n_rounds)]
            decode = RoundsDecode.concatenate([p[0] for p in parts])
            payload = np.concatenate([p[1] for p in parts])
            floors = np.concatenate([p[2] for p in parts])
            return decode, payload, floors
        bins, amplitudes, phases, payload, floors = self._draw_batch_inputs(
            n_rounds, fading
        )
        n_devices = self._deployment.n_devices
        n_preamble = self._structure.n_preamble_upchirps
        bit_tensor = np.ones(
            (n_rounds, n_preamble + self._payload_bits, n_devices)
        )
        bit_tensor[:, n_preamble:] = payload

        if self._engine in ("analytic", "auto"):
            decode = self._receiver.decode_readout(
                bins,
                amplitudes,
                phases,
                bit_tensor,
                n_preamble_upchirps=n_preamble,
                noise_snr_db=floors,
                rng=self._rng,
                dtype=self._readout_dtype,
            )
        else:
            symbols = compose_rounds(
                self._params, bins, amplitudes, phases, bit_tensor
            )
            noisy = awgn_rounds(symbols, floors, self._rng)
            decode = self._receiver.decode_rounds(
                noisy, n_preamble_upchirps=n_preamble
            )
        return decode, payload, floors

    def run_round(self, fading: bool = False) -> RoundResult:
        """One full concurrent round: compose, add noise, decode, account.

        SNR convention: the weakest *effective* device defines the noise
        level (its amplitude is the reference at its SNR); every other
        device's amplitude follows from its SNR relative to that.
        """
        decode, payload, _ = self._run_batch(1, fading)
        frame = decode.frame(0)
        airtime = netscatter_round_airtime_s(
            self._config, self._query_bits, self._structure
        )
        result = RoundResult(
            n_devices=self._deployment.n_devices,
            airtime=airtime,
            backend=decode.backend,
            noise_mode=decode.noise_mode,
            noise_version=decode.noise_version,
        )
        for index, device in enumerate(self._deployment.devices):
            result.sent_bits[device.device_id] = payload[
                0, :, index
            ].tolist()
            dec = frame.devices[index]
            result.detected[device.device_id] = dec.detected
            result.received_bits[device.device_id] = list(dec.bits)
        return result

    def run_rounds(self, n_rounds: int, fading: bool = False) -> NetworkMetrics:
        """Run several rounds and aggregate into the Fig. 17-19 metrics.

        All rounds flow through the batched decode engine; the per-round
        scoring is vectorised (a bit counts only when its device's
        preamble was detected, matching the per-round decoder's empty
        bit list for undetected devices).
        """
        if n_rounds < 1:
            raise ConfigurationError("need at least one round")
        decode, payload, _ = self._run_batch(n_rounds, fading)
        # The engine's columns follow the assignment order, which the
        # power-aware allocator does not keep in device-index order;
        # realign them with the payload tensor's device-index columns.
        columns = np.array(
            [
                decode.column_of(i)
                for i in range(self._deployment.n_devices)
            ],
            dtype=int,
        )
        detected = decode.detected[:, columns]  # (R, D)
        match = decode.bits[:, :, columns] == payload.astype(np.uint8)
        total_correct = int(np.sum(match & detected[:, None, :]))
        total_sent = int(payload.size)
        delivered = int(np.sum(detected & match.all(axis=1)))
        airtime = netscatter_round_airtime_s(
            self._config, self._query_bits, self._structure
        )
        n = self._deployment.n_devices
        delivery = delivered / (n * n_rounds)
        ber = 1.0 - total_correct / total_sent if total_sent else 0.0
        goodput_bits_per_round = (total_correct / n_rounds)
        phy_rate = goodput_bits_per_round / airtime.payload_s
        link_rate = goodput_bits_per_round / airtime.total_s
        return NetworkMetrics(
            n_devices=n,
            phy_rate_bps=phy_rate,
            link_layer_rate_bps=link_rate,
            latency_s=airtime.total_s,
            delivery_ratio=delivery,
            bit_error_rate=ber,
            goodput_bits_per_round=goodput_bits_per_round,
            backend=decode.backend,
            noise_mode=decode.noise_mode,
            noise_version=decode.noise_version,
        )


def resolve_pool_workers(workers: Optional[int]) -> int:
    """Effective process-pool size for a ``workers=`` request.

    Returns the number of pool workers to actually spawn, where ``0``
    means "run serially in this process, no pool at all". The pinned
    rules (regression-tested in ``tests/test_campaign.py``):

    * ``None``, ``0`` or ``1`` → serial (a 1-worker pool only adds
      pickling overhead);
    * any request on a 1-CPU host → serial — a pool cannot run points
      concurrently there, so spawning one would pay process start-up
      and pickling for nothing;
    * otherwise the request is honoured as given (deliberate
      oversubscription stays possible on multi-core hosts).

    Results never depend on the outcome: every sweep/campaign point
    owns a pre-derived seed, so serial and pooled runs are identical.
    """
    if workers is None:
        return 0
    requested = int(workers)
    if requested <= 1:
        return 0
    if (os.cpu_count() or 1) <= 1:
        return 0
    return requested


def _run_sweep_point(args: tuple) -> NetworkMetrics:
    """One sweep point, module-level so process pools can pickle it."""
    (
        deployment,
        config,
        count,
        n_rounds,
        query_bits,
        point_rng,
        engine,
        readout_dtype,
        noise_mode,
    ) = args
    sim = NetworkSimulator(
        deployment.subset(count),
        config=config,
        query_bits=query_bits,
        rng=point_rng,
        engine=engine,
        readout_dtype=readout_dtype,
        noise_mode=noise_mode,
    )
    return sim.run_rounds(n_rounds)


def sweep_device_counts(
    deployment: Deployment,
    device_counts: Sequence[int],
    config: Optional[NetScatterConfig] = None,
    n_rounds: int = 3,
    query_bits: int = QUERY_BITS_CONFIG1,
    rng: RngLike = None,
    engine: str = "analytic",
    workers: Optional[int] = None,
    float32_min_devices: Optional[int] = None,
    noise_mode: str = "payload",
) -> List[NetworkMetrics]:
    """Fig. 17-19 sweep: metrics at each device count.

    All sweep points run through the selected PHY engine — by default
    the analytic Dirichlet-kernel path, under which the points share
    the cached natural-grid probe readout (and its per-bin kernel
    trigonometry) and never build time-domain operators. Per-point
    generators are derived up front from ``rng`` so results are
    independent of execution order.

    Parameters
    ----------
    workers:
        When > 1, run sweep points in an opt-in process pool — intended
        for the remaining *time-domain* experiments whose per-point cost
        is dominated by tensor composition. Results are identical to the
        serial run (each point owns a pre-derived child generator). On
        a 1-CPU host the request falls back to serial execution without
        spawning the (redundant) pool — see :func:`resolve_pool_workers`
        for the pinned rules.
    float32_min_devices:
        When set, points with at least that many devices use
        ``numpy.complex64`` analytic operators (e.g. ``256`` to halve
        the cost of the largest Fig. 17 points). Applies to the
        ``"analytic"`` and ``"auto"`` engines (under ``"auto"`` only
        when the planner keeps the analytic backend); ignored by the
        time-domain engine.
    noise_mode:
        Engine-noise stream of every sweep point (default the
        located-bin ``"payload"`` stream; ``"full"`` pins the
        historical version-1 draws). See :class:`NetworkSimulator`.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    if noise_mode not in NOISE_MODES:
        raise ConfigurationError(
            f"noise_mode must be one of {NOISE_MODES}, got {noise_mode!r}"
        )
    deployment = _as_deployment(deployment)
    generator = make_rng(rng)
    jobs = []
    for count in device_counts:
        dtype = None
        if (
            engine in ("analytic", "auto")
            and float32_min_devices is not None
            and count >= int(float32_min_devices)
        ):
            dtype = np.complex64
        jobs.append(
            (
                deployment,
                config,
                count,
                n_rounds,
                query_bits,
                child_rng(generator, count),
                engine,
                dtype,
                noise_mode,
            )
        )
    pool_workers = resolve_pool_workers(workers)
    if pool_workers:
        return _pool_map_with_serial_fallback(jobs, pool_workers)
    return [_run_sweep_point(job) for job in jobs]


def _pool_map_with_serial_fallback(
    jobs: List[tuple], pool_workers: int
) -> List[NetworkMetrics]:
    """Run sweep jobs over the pool; finish serially if the pool breaks.

    A worker killed mid-sweep (OOM, signal, injected fault) raises
    :class:`BrokenProcessPool` for every outstanding job. Results
    already collected are kept — every point owns a pre-derived seed,
    so serially recomputing the remainder is bit-identical to what the
    lost workers would have produced — and the sweep completes instead
    of dying. The degradation is logged, never silent.
    """
    results: List[NetworkMetrics] = []
    try:
        with ProcessPoolExecutor(max_workers=pool_workers) as pool:
            for metrics in pool.map(_run_sweep_point, jobs):
                results.append(metrics)
    except BrokenProcessPool:
        logging.getLogger(__name__).warning(
            "process pool broke after %d/%d sweep points; "
            "finishing the remaining points serially",
            len(results),
            len(jobs),
        )
        results.extend(
            _run_sweep_point(job) for job in jobs[len(results) :]
        )
    return results
