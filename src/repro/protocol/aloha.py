"""Slotted Aloha with binary exponential backoff for association bursts.

Section 3.3.2 notes that when several devices want to associate at once,
the two reserved shifts can collide; the paper proposes (but does not
deploy) Aloha with binary exponential backoff. We implement it as the
documented extension: each joiner transmits its request in a query round
with probability determined by its backoff window, doubling the window on
every collision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import ProtocolError
from repro.utils.rng import RngLike, make_rng


@dataclass
class BackoffState:
    """Per-device binary-exponential-backoff state."""

    window: int = 1
    countdown: int = 0
    attempts: int = 0

    def on_collision(self, max_window: int, rng) -> None:
        self.window = min(self.window * 2, max_window)
        self.countdown = int(rng.integers(0, self.window))
        self.attempts += 1

    def ready(self) -> bool:
        return self.countdown == 0

    def tick(self) -> None:
        if self.countdown > 0:
            self.countdown -= 1


@dataclass
class AlohaStats:
    """Outcome of an association-contention simulation."""

    rounds: int
    successes: Dict[int, int] = field(default_factory=dict)
    collisions: int = 0

    @property
    def n_succeeded(self) -> int:
        return len(self.successes)

    def completion_round(self) -> int:
        """Round by which the last device succeeded."""
        if not self.successes:
            raise ProtocolError("no device succeeded")
        return max(self.successes.values())


class AlohaAssociation:
    """Simulates contention on one reserved association shift.

    Each query round, every still-unassociated device whose countdown
    expired transmits its request. Exactly one transmitter in a round
    succeeds (the AP decodes the single peak); two or more collide, and
    everyone involved backs off.
    """

    def __init__(
        self, n_devices: int, max_window: int = 64, rng: RngLike = None
    ) -> None:
        if n_devices < 1:
            raise ProtocolError("need at least one joining device")
        if max_window < 2:
            raise ProtocolError("max_window must be >= 2")
        self._rng = make_rng(rng)
        self._max_window = int(max_window)
        self._states: Dict[int, BackoffState] = {
            device_id: BackoffState() for device_id in range(n_devices)
        }
        self._done: Set[int] = set()

    @property
    def n_pending(self) -> int:
        return len(self._states) - len(self._done)

    def run(self, max_rounds: int = 10000) -> AlohaStats:
        """Run rounds until everyone associated (or the round cap hits)."""
        stats = AlohaStats(rounds=0)
        for round_index in range(1, max_rounds + 1):
            stats.rounds = round_index
            transmitters: List[int] = []
            for device_id, state in self._states.items():
                if device_id in self._done:
                    continue
                if state.ready():
                    transmitters.append(device_id)
                else:
                    state.tick()
            if len(transmitters) == 1:
                winner = transmitters[0]
                self._done.add(winner)
                stats.successes[winner] = round_index
            elif len(transmitters) > 1:
                stats.collisions += 1
                for device_id in transmitters:
                    self._states[device_id].on_collision(
                        self._max_window, self._rng
                    )
            if len(self._done) == len(self._states):
                break
        return stats


def expected_rounds_upper_bound(n_devices: int) -> float:
    """Loose analytic bound: slotted Aloha drains n contenders in about
    ``e * n`` successful-slot expectations; used as a sanity ceiling in
    tests rather than a tight model."""
    import math

    if n_devices < 1:
        raise ProtocolError("need at least one device")
    return math.e * n_devices + 10.0 * math.sqrt(n_devices) + 10.0
