"""Long-running network session: the protocol dynamics over time.

Ties every moving part together across many rounds of a fading channel:
the AP broadcasts queries, each tag measures the query RSSI through its
envelope detector, runs the reciprocity power-control step, possibly sits
rounds out, and — after repeated failures — re-initiates association,
whereupon the AP re-ranks it and (if its rank moved) issues a full
reassignment query. This is the Section 3.2.3/3.3.2 closed loop that the
single-round simulator cannot show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.channel.awgn import awgn_rounds
from repro.channel.deployment import Deployment, paper_deployment
from repro.core.config import NetScatterConfig
from repro.core.dcss import compose_rounds
from repro.core.receiver import NetScatterReceiver
from repro.errors import ConfigurationError
from repro.hardware.device import BackscatterDevice, DeviceState
from repro.hardware.mcu import McuTimingModel
from repro.utils.rng import RngLike, child_rng, make_rng


@dataclass
class SessionStats:
    """Aggregates over a session's rounds."""

    rounds: int = 0
    delivery_by_round: List[float] = field(default_factory=list)
    participation_by_round: List[float] = field(default_factory=list)
    reassociations: int = 0
    reassignment_queries: int = 0
    power_steps: int = 0

    @property
    def mean_delivery(self) -> float:
        if not self.delivery_by_round:
            return 0.0
        return float(np.mean(self.delivery_by_round))

    @property
    def mean_participation(self) -> float:
        if not self.participation_by_round:
            return 0.0
        return float(np.mean(self.participation_by_round))


class NetworkSession:
    """A NetScatter network living through channel dynamics.

    Parameters
    ----------
    deployment:
        The device population (positions fix mean SNRs; each device's
        fading process drives the round-to-round channel).
    round_interval_s:
        Wall-clock spacing between concurrent rounds (the fading steps
        by this amount each round).
    backend:
        Protocol-state storage backend, threaded through to the AP's
        allocation table, association controller and scheduler
        (``"flat"`` struct-of-arrays by default; ``"object"`` is the
        legacy per-device path, pinned equivalent by the tests).
    """

    def __init__(
        self,
        deployment: Optional[Deployment] = None,
        config: Optional[NetScatterConfig] = None,
        payload_bits: int = 20,
        round_interval_s: float = 0.06,
        fading_std_db: float = 3.0,
        rng: RngLike = None,
        backend: str = "flat",
    ) -> None:
        self._rng = make_rng(rng)
        if deployment is None:
            deployment = paper_deployment(
                n_devices=64, rng=child_rng(self._rng, 0)
            )
        if config is None:
            config = NetScatterConfig(n_association_shifts=0)
        if deployment.n_devices > config.max_devices:
            raise ConfigurationError("deployment exceeds configuration")
        self._deployment = deployment
        self._config = config
        self._params = config.chirp_params
        self._payload_bits = int(payload_bits)
        self._interval = float(round_interval_s)
        self._timing = McuTimingModel()
        self.stats = SessionStats()

        # Build tags and associate everyone (one at a time, as deployed).
        from repro.protocol.ap import AccessPoint

        self._ap = AccessPoint(config, backend=backend)
        self._devices: Dict[int, BackscatterDevice] = {}
        for dep_device in deployment.devices:
            # Re-scale the fading to the session's regime, redrawing the
            # state so it is stationary under the new std from round 0.
            dep_device.fading.std_db = fading_std_db
            dep_device.fading.reset(child_rng(self._rng, dep_device.device_id))
            tag = BackscatterDevice(
                dep_device.device_id,
                self._params,
                rng=child_rng(self._rng, 100 + dep_device.device_id),
            )
            rssi = dep_device.downlink_rssi_dbm
            tag.begin_association(rssi)
            shift = self._ap.run_association(
                dep_device.device_id, dep_device.uplink_snr_db
            )
            tag.complete_association(shift, rssi)
            self._devices[dep_device.device_id] = tag
        self._receiver = NetScatterReceiver(config, self._ap.assignments())

    @property
    def ap(self):
        return self._ap

    @property
    def n_devices(self) -> int:
        return len(self._devices)

    def _rebuild_receiver(self) -> None:
        self._receiver = NetScatterReceiver(
            self._config, self._ap.assignments()
        )

    def run_round(self) -> float:
        """One full query/response round; returns the delivery ratio."""
        self.stats.rounds += 1
        participants: List[int] = []
        gains: Dict[int, float] = {}
        reassignment_needed = False

        for dep_device in self._deployment.devices:
            device_id = dep_device.device_id
            tag = self._devices[device_id]
            channel_delta = (
                dep_device.step_channel(self._interval, self._rng)
                - dep_device.uplink_snr_db
            )
            rssi = dep_device.downlink_rssi_dbm + channel_delta
            before_level = tag.switch.gain_db
            gain, participate = tag.adjust_power(rssi)
            if gain != before_level:
                self.stats.power_steps += 1
            if tag.state is not DeviceState.ASSOCIATED:
                # The tag gave up and re-initiates association with its
                # new channel; the AP re-ranks it.
                self.stats.reassociations += 1
                new_snr = dep_device.current_uplink_snr_db()
                changed = self._ap.update_member_snr(device_id, new_snr)
                if changed:
                    reassignment_needed = True
                tag.begin_association(rssi)
                tag.complete_association(
                    self._ap.assignments()[device_id], rssi
                )
                continue  # sits this round out while re-joining
            if participate:
                participants.append(device_id)
                gains[device_id] = gain

        if reassignment_needed:
            query = self._ap.build_query()
            if query.reassignment_order is not None:
                self.stats.reassignment_queries += 1
            self._rebuild_receiver()

        if not participants:
            self.stats.delivery_by_round.append(0.0)
            self.stats.participation_by_round.append(0.0)
            return 0.0

        delivery = self._transmit_round(participants, gains)
        self.stats.delivery_by_round.append(delivery)
        self.stats.participation_by_round.append(
            len(participants) / self.n_devices
        )
        return delivery

    def _transmit_round(
        self, participants: List[int], gains: Dict[int, float]
    ) -> float:
        """Compose, decode and score one concurrent transmission.

        Runs as a one-round batch through the receiver's cached
        sparse-readout engine; the participant set (and hence the plan)
        only changes when the AP reassigns, which rebuilds the receiver.
        """
        assignments = self._ap.assignments()
        by_dep = {d.device_id: d for d in self._deployment.devices}
        effective = [
            by_dep[i].current_uplink_snr_db() + gains[i]
            for i in participants
        ]
        floor = min(effective)
        n = len(participants)
        delays = self._timing.sample_latencies_s(n, self._rng)
        delays -= delays.mean()
        bins = (
            np.array([assignments[i] for i in participants], dtype=float)
            - delays * self._params.bandwidth_hz
        )
        amplitudes = 10.0 ** ((np.asarray(effective) - floor) / 20.0)
        phases = self._rng.uniform(0, 2 * np.pi, size=n)
        payload = self._rng.integers(
            0, 2, size=(self._payload_bits, n)
        )
        bit_tensor = np.vstack([np.ones((6, n)), payload])[None, :, :]
        symbols = compose_rounds(
            self._params,
            bins[None, :],
            amplitudes[None, :],
            phases[None, :],
            bit_tensor,
        )
        decode = self._receiver.decode_rounds(
            awgn_rounds(symbols, floor, self._rng)
        )
        columns = np.array(
            [decode.column_of(i) for i in participants], dtype=int
        )
        match = (
            decode.bits[0][:, columns] == payload.astype(np.uint8)
        ).all(axis=0)
        delivered = int(np.sum(decode.detected[0, columns] & match))
        return delivered / n

    def run(self, n_rounds: int) -> SessionStats:
        """Run a session of ``n_rounds`` and return the statistics."""
        if n_rounds < 1:
            raise ConfigurationError("need at least one round")
        for _ in range(n_rounds):
            self.run_round()
        return self.stats
