"""Command-line experiment runner.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro run fig17            # regenerate one figure (full scale)
    python -m repro run fig12 --quick    # reduced-scale smoke run
    python -m repro all --quick          # smoke-run everything
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import (
    experiment_ids,
    run_experiment,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NetScatter reproduction: regenerate paper figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=experiment_ids())
    run.add_argument(
        "--quick", action="store_true", help="reduced-scale run"
    )
    run.add_argument("--seed", type=int, default=0)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument(
        "--quick", action="store_true", help="reduced-scale runs"
    )
    everything.add_argument("--seed", type=int, default=0)
    return parser


def _run_one(experiment_id: str, quick: bool, seed: int) -> bool:
    started = time.time()
    result = run_experiment(experiment_id, quick=quick, seed=seed)
    elapsed = time.time() - started
    print(result.report(max_rows=30))
    print(f"[{experiment_id}] finished in {elapsed:.1f}s\n")
    return result.all_checks_pass()


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "run":
        ok = _run_one(args.experiment, args.quick, args.seed)
        return 0 if ok else 1
    # command == "all"
    failures = []
    for experiment_id in experiment_ids():
        if not _run_one(experiment_id, args.quick, args.seed):
            failures.append(experiment_id)
    if failures:
        print(f"shape-check failures: {', '.join(failures)}")
        return 1
    print("all experiments passed their shape checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
