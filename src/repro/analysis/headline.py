"""Headline reproduction summary: the paper's abstract in one table.

The abstract claims 14-62x link-layer throughput gains and 15-67x latency
reductions over prior long-range backscatter, with 1-2 orders of magnitude
more concurrency. This module computes exactly those windows from the
simulated deployment so the claim can be asserted programmatically (and
regenerated for the README).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.lora_backscatter import LoRaBackscatterNetwork
from repro.channel.deployment import Deployment, paper_deployment
from repro.constants import QUERY_BITS_CONFIG1, QUERY_BITS_CONFIG2
from repro.core.config import NetScatterConfig
from repro.protocol.network import NetworkSimulator
from repro.utils.rng import RngLike, child_rng, make_rng

PAPER_ABSTRACT_CLAIMS = {
    "link_layer_gain_low": 14.0,
    "link_layer_gain_high": 62.0,
    "latency_reduction_low": 15.0,
    "latency_reduction_high": 67.0,
}


def headline_summary(
    deployment: Optional[Deployment] = None,
    n_rounds: int = 3,
    rng: RngLike = None,
) -> Dict[str, float]:
    """Compute the abstract's gain windows over the 256-device deployment.

    Returns the min/max link-layer gain and latency reduction across the
    {config 1, config 2} x {fixed-rate, rate-adapted} comparison grid —
    the paper's "14-62x" and "15-67x" windows.
    """
    generator = make_rng(rng)
    if deployment is None:
        deployment = paper_deployment(rng=child_rng(generator, 0))
    config = NetScatterConfig(n_association_shifts=0)
    snrs = deployment.snrs_db().tolist()

    fixed = LoRaBackscatterNetwork(snrs, rate_adaptation=False)
    adaptive = LoRaBackscatterNetwork(snrs, rate_adaptation=True)
    baselines = {
        "fixed": (fixed.link_layer_rate_bps(), fixed.network_latency_s()),
        "ra": (
            adaptive.link_layer_rate_bps(),
            adaptive.network_latency_s(),
        ),
    }

    gains = []
    reductions = []
    for query_bits in (QUERY_BITS_CONFIG1, QUERY_BITS_CONFIG2):
        sim = NetworkSimulator(
            deployment,
            config=config,
            query_bits=query_bits,
            rng=child_rng(generator, query_bits),
        )
        metrics = sim.run_rounds(n_rounds)
        for rate, latency in baselines.values():
            gains.append(metrics.link_layer_rate_bps / rate)
            reductions.append(latency / metrics.latency_s)

    return {
        "n_devices": float(deployment.n_devices),
        "link_layer_gain_low": min(gains),
        "link_layer_gain_high": max(gains),
        "latency_reduction_low": min(reductions),
        "latency_reduction_high": max(reductions),
    }


def abstract_claims_hold(
    summary: Dict[str, float], slack: float = 2.0
) -> bool:
    """Whether the measured windows land within ``slack``x of the
    paper's abstract numbers on both ends."""
    for key, paper_value in PAPER_ABSTRACT_CLAIMS.items():
        measured = summary[key]
        if not (paper_value / slack <= measured <= paper_value * slack):
            return False
    return True
