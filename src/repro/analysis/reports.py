"""Plain-text table/series formatting for the benchmark harness.

Every experiment prints its figure/table as aligned text rows so the
bench output can be compared with the paper directly; no plotting
dependencies are required.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ReproError


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.4g}",
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        raise ReproError("no rows to format")
    missing = [c for c in columns if c not in rows[0]]
    if missing:
        raise ReproError(f"rows are missing columns: {missing}")

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = list(columns)
    body = [[render(row[c]) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body))
        for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(header, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str,
    y_label: str,
    title: str = "",
    max_rows: int = 40,
) -> str:
    """Render an (x, y) series as a two-column table, downsampled."""
    if len(x) != len(y):
        raise ReproError("x and y must have the same length")
    if len(x) == 0:
        raise ReproError("empty series")
    step = max(1, len(x) // max_rows)
    rows = [
        {x_label: float(x[i]), y_label: float(y[i])}
        for i in range(0, len(x), step)
    ]
    return format_table(rows, [x_label, y_label], title=title)


def format_comparison(
    measured: Dict[str, float],
    expected: Dict[str, float],
    title: str = "",
) -> str:
    """Side-by-side measured-vs-paper table (for EXPERIMENTS.md)."""
    keys = [k for k in expected if k in measured]
    if not keys:
        raise ReproError("no overlapping keys to compare")
    rows = [
        {
            "quantity": key,
            "paper": float(expected[key]),
            "measured": float(measured[key]),
        }
        for key in keys
    ]
    return format_table(rows, ["quantity", "paper", "measured"], title=title)
