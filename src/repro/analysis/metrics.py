"""Core evaluation metrics: BER, PER, rates and latency summaries."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ReproError
from repro.utils.bits import hamming_distance


def ber(sent_bits: Sequence[int], received_bits: Sequence[int]) -> float:
    """Bit error rate between two equal-length bit sequences."""
    if len(sent_bits) == 0:
        raise ReproError("cannot compute BER over zero bits")
    return hamming_distance(sent_bits, received_bits) / len(sent_bits)


def packet_error_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of failed packets; ``outcomes[i]`` is True on success."""
    results = list(outcomes)
    if not results:
        raise ReproError("cannot compute PER over zero packets")
    return 1.0 - sum(1 for ok in results if ok) / len(results)


def delivery_ratio(outcomes: Iterable[bool]) -> float:
    """Complement of :func:`packet_error_rate`."""
    return 1.0 - packet_error_rate(outcomes)


def network_phy_rate_bps(
    delivered_bits: float, payload_airtime_s: float
) -> float:
    """Network PHY rate: delivered payload bits over payload air time.

    Fig. 17's metric — overheads (queries, preambles) excluded.
    """
    if payload_airtime_s <= 0:
        raise ReproError("payload air time must be positive")
    if delivered_bits < 0:
        raise ReproError("delivered bits must be non-negative")
    return delivered_bits / payload_airtime_s


def link_layer_rate_bps(delivered_bits: float, total_airtime_s: float) -> float:
    """Link-layer rate: delivered payload bits over *total* air time.

    Fig. 18's metric — queries and preambles included.
    """
    if total_airtime_s <= 0:
        raise ReproError("total air time must be positive")
    if delivered_bits < 0:
        raise ReproError("delivered bits must be non-negative")
    return delivered_bits / total_airtime_s


def gain_factor(value: float, baseline: float) -> float:
    """Improvement factor vs a baseline (the paper's NNx numbers)."""
    if baseline <= 0:
        raise ReproError("baseline must be positive")
    return value / baseline


def summarize_series(rows: List[Dict[str, float]], key: str) -> Dict[str, float]:
    """Mean/min/max summary of one column of a result series."""
    values = np.array([row[key] for row in rows], dtype=float)
    if values.size == 0:
        raise ReproError("empty series")
    return {
        "mean": float(values.mean()),
        "min": float(values.min()),
        "max": float(values.max()),
    }
