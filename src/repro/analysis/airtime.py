"""Air-time accounting for NetScatter and the LoRa backscatter baseline.

The link-layer and latency comparisons (Figs. 18-19) are dominated by who
pays which overhead how often:

* NetScatter: one query + one 8-symbol preamble + one payload window per
  round, shared by *all* concurrent devices;
* LoRa backscatter (TDMA): one query + one preamble + one payload *per
  device per poll*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    DOWNLINK_BITRATE_BPS,
    LORA_BACKSCATTER_QUERY_BITS,
    PAYLOAD_CRC_BITS,
)
from repro.core.config import NetScatterConfig
from repro.errors import ConfigurationError
from repro.phy.chirp import ChirpParams
from repro.phy.packet import PacketStructure


@dataclass(frozen=True)
class RoundAirtime:
    """Breakdown of one NetScatter concurrent round's air time."""

    query_s: float
    preamble_s: float
    payload_s: float

    @property
    def total_s(self) -> float:
        return self.query_s + self.preamble_s + self.payload_s


def netscatter_round_airtime_s(
    config: NetScatterConfig,
    query_bits: int,
    structure: PacketStructure = None,
    downlink_bitrate_bps: float = DOWNLINK_BITRATE_BPS,
) -> RoundAirtime:
    """Air time of one concurrent round (query + shared packet)."""
    if query_bits < 0:
        raise ConfigurationError("query_bits must be non-negative")
    if structure is None:
        structure = PacketStructure()
    params = config.chirp_params
    return RoundAirtime(
        query_s=query_bits / downlink_bitrate_bps,
        preamble_s=structure.preamble_airtime_s(params),
        payload_s=structure.payload_airtime_s(params),
    )


def lora_backscatter_poll_airtime_s(
    payload_bitrate_bps: float,
    payload_bits: int = PAYLOAD_CRC_BITS,
    preamble_s: float = None,
    params: ChirpParams = None,
    query_bits: int = LORA_BACKSCATTER_QUERY_BITS,
    downlink_bitrate_bps: float = DOWNLINK_BITRATE_BPS,
    n_preamble_symbols: int = 8,
) -> float:
    """Air time for the TDMA baseline to poll *one* device.

    The AP queries the device (28 bits), the device sends its preamble
    (8 chirp symbols at its own SF/BW) and then the payload at its
    bitrate. When ``preamble_s`` is not given it is derived from
    ``params`` (the modulation the device transmits with).
    """
    if payload_bitrate_bps <= 0:
        raise ConfigurationError("payload bitrate must be positive")
    if preamble_s is None:
        if params is None:
            raise ConfigurationError(
                "need either preamble_s or the chirp params"
            )
        preamble_s = n_preamble_symbols * params.symbol_duration_s
    query_s = query_bits / downlink_bitrate_bps
    payload_s = payload_bits / payload_bitrate_bps
    return query_s + preamble_s + payload_s


def netscatter_link_layer_rate_bps(
    config: NetScatterConfig,
    n_devices: int,
    query_bits: int,
    payload_bits: int = PAYLOAD_CRC_BITS,
    delivery_ratio: float = 1.0,
) -> float:
    """End-to-end link-layer rate of one concurrent round.

    Useful payload bits from all devices divided by the full round air
    time (query + preamble + payload), derated by the measured packet
    delivery ratio.
    """
    if n_devices < 1:
        raise ConfigurationError("need at least one device")
    if not 0.0 <= delivery_ratio <= 1.0:
        raise ConfigurationError("delivery ratio must lie in [0, 1]")
    structure = PacketStructure(payload_bits=payload_bits)
    airtime = netscatter_round_airtime_s(config, query_bits, structure)
    useful_bits = n_devices * payload_bits * delivery_ratio
    return useful_bits / airtime.total_s


def netscatter_network_latency_s(
    config: NetScatterConfig,
    query_bits: int,
    payload_bits: int = PAYLOAD_CRC_BITS,
) -> float:
    """Latency to collect one payload from every device: one round."""
    structure = PacketStructure(payload_bits=payload_bits)
    return netscatter_round_airtime_s(config, query_bits, structure).total_s


def lora_network_latency_s(
    per_device_bitrates_bps,
    payload_bits: int = PAYLOAD_CRC_BITS,
    per_device_preamble_s=None,
    params: ChirpParams = None,
) -> float:
    """TDMA latency: the sum of every device's sequential poll."""
    total = 0.0
    rates = list(per_device_bitrates_bps)
    if per_device_preamble_s is None:
        per_device_preamble_s = [None] * len(rates)
    for rate, preamble_s in zip(rates, per_device_preamble_s):
        total += lora_backscatter_poll_airtime_s(
            rate,
            payload_bits=payload_bits,
            preamble_s=preamble_s,
            params=params,
        )
    return total
