"""Evaluation analytics: air-time accounting, metrics and report tables.

These helpers turn raw simulation outcomes into the quantities the
paper's evaluation section reports: network PHY rate, link-layer data
rate (with query and preamble overheads) and network latency.
"""

from repro.analysis.airtime import (
    netscatter_round_airtime_s,
    lora_backscatter_poll_airtime_s,
)
from repro.analysis.metrics import (
    ber,
    packet_error_rate,
    network_phy_rate_bps,
    link_layer_rate_bps,
)

__all__ = [
    "netscatter_round_airtime_s",
    "lora_backscatter_poll_airtime_s",
    "ber",
    "packet_error_rate",
    "network_phy_rate_bps",
    "link_layer_rate_bps",
]
