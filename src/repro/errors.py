"""Exception hierarchy for the NetScatter reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A modulation / protocol configuration is inconsistent or unsupported."""


class AllocationError(ReproError):
    """Cyclic-shift allocation failed (e.g. network is at capacity)."""


class AssociationError(ReproError):
    """A device could not be associated with the access point."""


class DecodingError(ReproError):
    """The receiver could not decode a frame (e.g. no preamble found)."""


class SynchronizationError(DecodingError):
    """Packet-start estimation failed."""


class LinkBudgetError(ReproError):
    """A link-budget computation received out-of-domain inputs."""


class HardwareModelError(ReproError):
    """A hardware model (impedance, oscillator, MCU) received invalid input."""


class ProtocolError(ReproError):
    """A protocol message is malformed or arrived in an invalid state."""


class CampaignError(ReproError):
    """Base class for campaign-layer failures (execution, storage, leases)."""


class CampaignExecutionError(CampaignError):
    """One or more campaign points failed permanently (retries exhausted)."""


class CampaignIntegrityError(CampaignError):
    """A stored campaign chunk is corrupt (torn, undecodable, or its
    content hash disagrees with its name); the chunk has been quarantined."""


class LeaseError(CampaignError):
    """A lease operation hit an inconsistent on-disk state."""


class StorageError(CampaignError):
    """Base class for storage-driver failures (posix, memory, remote)."""


class StorageMissingError(StorageError):
    """The requested key does not exist in the storage backend.

    Never retried: absence is a definitive answer, not a fault."""


class TransientStorageError(StorageError):
    """A storage operation failed in a way that may succeed on retry
    (I/O hiccup, timeout, torn write detected mid-operation). The
    retrying driver wrapper absorbs these with bounded backoff.

    ``retry_after_s``, when not ``None``, is a backend-provided hint
    (an HTTP ``Retry-After`` header, say) that retrying sooner is
    pointless; the retrying wrapper stretches its backoff to honour
    it."""

    def __init__(self, *args, retry_after_s=None):
        super().__init__(*args)
        self.retry_after_s = retry_after_s


class PersistentStorageError(StorageError):
    """A storage operation failed permanently (retry budget exhausted,
    or the backend reported a non-recoverable condition). The campaign
    runner degrades to read-only serving when writes reach this."""


class CircuitOpenError(PersistentStorageError):
    """The client-side circuit breaker is open: the remote store has
    failed persistently enough that further calls fail fast instead of
    hammering a dead endpoint. Subclasses PersistentStorageError, so
    the campaign runner's read-only degradation path applies
    unchanged."""


class CampaignServiceError(CampaignError):
    """The campaign service node rejected or could not complete a
    request (malformed spec, unknown campaign, a subscriber dropped for
    falling too far behind the result stream). Wire-level transport
    failures raise :class:`TransientStorageError` /
    :class:`PersistentStorageError` instead, so the client's retry and
    circuit-breaker machinery treats the service exactly like a remote
    store."""


class PointTimeoutError(CampaignError):
    """A campaign point exceeded its per-point execution timeout."""


class FaultInjectedError(CampaignError):
    """A synthetic failure raised by the deterministic fault-injection
    harness (:mod:`repro.campaign.faults`) — never by real physics."""
