"""Exception hierarchy for the NetScatter reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A modulation / protocol configuration is inconsistent or unsupported."""


class AllocationError(ReproError):
    """Cyclic-shift allocation failed (e.g. network is at capacity)."""


class AssociationError(ReproError):
    """A device could not be associated with the access point."""


class DecodingError(ReproError):
    """The receiver could not decode a frame (e.g. no preamble found)."""


class SynchronizationError(DecodingError):
    """Packet-start estimation failed."""


class LinkBudgetError(ReproError):
    """A link-budget computation received out-of-domain inputs."""


class HardwareModelError(ReproError):
    """A hardware model (impedance, oscillator, MCU) received invalid input."""


class ProtocolError(ReproError):
    """A protocol message is malformed or arrived in an invalid state."""
