"""Composite link budget: AP -> tag (downlink) and AP -> tag -> AP (uplink).

NetScatter is monostatic backscatter: the AP transmits a single tone plus
ASK queries; the tag reflects the tone with its own modulation. The
downlink pays the one-way path loss (the paper's footnote: query
sensitivity need only be -44 dBm); the uplink pays it twice plus the tag's
modulation insertion loss, which is why uplink sensitivities of -120 dBm
and below are needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.awgn import snr_from_rssi_db
from repro.channel.pathloss import indoor_path_loss_db
from repro.constants import (
    AP_TX_POWER_DBM,
    CARRIER_FREQ_HZ,
    DEFAULT_BANDWIDTH_HZ,
    TAG_ANTENNA_GAIN_DBI,
)
from repro.errors import LinkBudgetError


@dataclass(frozen=True)
class LinkBudget:
    """Link-budget parameters of one AP/tag pair.

    Defaults reproduce the paper's hardware: 30 dBm AP output (USRP +
    RF5110 PA), 2 dBi tag whip antenna, 900 MHz carrier, 500 kHz receive
    bandwidth, ~6 dB tag insertion loss for square-wave OOK backscatter.
    """

    ap_tx_power_dbm: float = AP_TX_POWER_DBM
    tag_antenna_gain_dbi: float = TAG_ANTENNA_GAIN_DBI
    carrier_freq_hz: float = CARRIER_FREQ_HZ
    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ
    backscatter_insertion_loss_db: float = 6.0
    noise_figure_db: float = 6.0
    path_loss_exponent: float = 3.0
    wall_loss_db: float = 5.0

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise LinkBudgetError("bandwidth must be positive")
        if self.carrier_freq_hz <= 0:
            raise LinkBudgetError("carrier frequency must be positive")

    def one_way_loss_db(self, distance_m: float, n_walls: int = 0) -> float:
        """Path loss of the AP -> tag downlink leg."""
        return indoor_path_loss_db(
            distance_m,
            self.carrier_freq_hz,
            n_walls=n_walls,
            exponent=self.path_loss_exponent,
            wall_loss_db=self.wall_loss_db,
        )

    def downlink_rssi_dbm(self, distance_m: float, n_walls: int = 0) -> float:
        """Query-message RSSI at the tag's envelope detector."""
        return (
            self.ap_tx_power_dbm
            + self.tag_antenna_gain_dbi
            - self.one_way_loss_db(distance_m, n_walls)
        )

    def uplink_rssi_dbm(
        self,
        distance_m: float,
        n_walls: int = 0,
        tag_power_gain_db: float = 0.0,
    ) -> float:
        """Backscattered signal power back at the AP.

        ``tag_power_gain_db`` is the tag's power-control setting (0, -4 or
        -10 dB on the paper's hardware).
        """
        one_way = self.one_way_loss_db(distance_m, n_walls)
        return (
            self.ap_tx_power_dbm
            + 2.0 * self.tag_antenna_gain_dbi
            - 2.0 * one_way
            - self.backscatter_insertion_loss_db
            + tag_power_gain_db
        )

    def uplink_snr_db(
        self,
        distance_m: float,
        n_walls: int = 0,
        tag_power_gain_db: float = 0.0,
    ) -> float:
        """Pre-despreading in-band uplink SNR at the AP."""
        rssi = self.uplink_rssi_dbm(distance_m, n_walls, tag_power_gain_db)
        return snr_from_rssi_db(rssi, self.bandwidth_hz, self.noise_figure_db)

    def query_decodable(self, distance_m: float, n_walls: int = 0) -> bool:
        """Whether the tag's envelope detector can hear the query."""
        from repro.constants import ENVELOPE_DETECTOR_SENSITIVITY_DBM

        return (
            self.downlink_rssi_dbm(distance_m, n_walls)
            >= ENVELOPE_DETECTOR_SENSITIVITY_DBM
        )


def uplink_snr_db(distance_m: float, n_walls: int = 0, **kwargs) -> float:
    """Module-level convenience wrapper over :class:`LinkBudget`."""
    return LinkBudget(**kwargs).uplink_snr_db(distance_m, n_walls)


def downlink_rssi_dbm(distance_m: float, n_walls: int = 0, **kwargs) -> float:
    """Module-level convenience wrapper over :class:`LinkBudget`."""
    return LinkBudget(**kwargs).downlink_rssi_dbm(distance_m, n_walls)
