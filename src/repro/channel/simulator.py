"""Waveform-fidelity end-to-end channel simulator.

The highest-fidelity path through the system: every device's packet is
rendered as oversampled complex baseband (mirroring the paper's 4 Msps
USRP capture of a 500 kHz signal), delayed by its true turnaround latency
at sub-sample resolution, rotated by its CFO, optionally passed through a
Saleh-Valenzuela multipath channel, summed, noise-loaded, and decimated
back to the critical rate for the receiver. Used to validate the fast
bin-domain path and to exercise synchronisation under realistic
impairments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.awgn import awgn
from repro.channel.multipath import MultipathChannel, saleh_valenzuela_channel
from repro.core.config import NetScatterConfig
from repro.core.dcss import DeviceTransmission
from repro.errors import ConfigurationError
from repro.phy.chirp import oversampled_upchirp
from repro.utils.conversions import amplitude_from_db
from repro.utils.rng import RngLike, make_rng
from repro.utils.sampling import apply_cfo


@dataclass
class WaveformScenario:
    """One concurrent frame rendered at waveform fidelity.

    Attributes
    ----------
    stream:
        Critical-rate complex baseband the receiver consumes.
    oversampled:
        The pre-decimation composite at ``oversampling x BW``.
    true_start:
        Index of the first preamble sample in ``stream``.
    """

    stream: np.ndarray
    oversampled: Optional[np.ndarray] = field(repr=False, default=None)
    true_start: int = 0
    oversampling: int = 4


class WaveformSimulator:
    """Renders concurrent NetScatter frames at oversampled fidelity."""

    def __init__(
        self,
        config: NetScatterConfig,
        oversampling: int = 4,
        multipath: bool = False,
        n_preamble_upchirps: int = 6,
        n_preamble_downchirps: int = 2,
        rng: RngLike = None,
    ) -> None:
        if oversampling < 1:
            raise ConfigurationError("oversampling must be >= 1")
        self._config = config
        self._params = config.chirp_params
        self._os = int(oversampling)
        self._multipath = bool(multipath)
        self._n_up = int(n_preamble_upchirps)
        self._n_down = int(n_preamble_downchirps)
        self._rng = make_rng(rng)

    @property
    def sample_rate_hz(self) -> float:
        """Oversampled rate (the "USRP" rate)."""
        return self._params.bandwidth_hz * self._os

    def _device_packet(
        self, shift: int, bits: Sequence[int]
    ) -> np.ndarray:
        """One device's full packet at the oversampled rate."""
        n_os = self._params.n_samples * self._os
        up = oversampled_upchirp(self._params, self._os, shift)
        down = np.conjugate(up)
        silence = np.zeros(n_os, dtype=complex)
        parts: List[np.ndarray] = [up] * self._n_up + [down] * self._n_down
        for bit in bits:
            if bit not in (0, 1):
                raise ConfigurationError(f"bits must be 0/1, got {bit!r}")
            parts.append(up if bit else silence)
        return np.concatenate(parts)

    def _channel_for_device(self) -> Optional[MultipathChannel]:
        if not self._multipath:
            return None
        return saleh_valenzuela_channel(self._rng)

    def render(
        self,
        transmissions: Sequence[DeviceTransmission],
        snr_db: Optional[float] = None,
        leading_silence_symbols: int = 2,
        trailing_silence_symbols: int = 2,
    ) -> WaveformScenario:
        """Render a concurrent frame through the full channel.

        ``snr_db`` is the per-unit-power in-band SNR at the critical rate
        (``None`` for noiseless). Delays are applied at the oversampled
        grid (sub-critical-sample resolution); each device gets an
        independent multipath realisation when enabled.
        """
        if not transmissions:
            raise ConfigurationError("need at least one transmission")
        n_payload = len(list(transmissions[0].bits))
        for tx in transmissions:
            if len(list(tx.bits)) != n_payload:
                raise ConfigurationError(
                    "all devices must send equal-length payloads"
                )
        n_os = self._params.n_samples * self._os
        frame_os = (self._n_up + self._n_down + n_payload) * n_os
        lead = leading_silence_symbols * n_os
        trail = trailing_silence_symbols * n_os
        total = np.zeros(lead + frame_os + trail, dtype=complex)

        fs = self.sample_rate_hz
        for tx in transmissions:
            packet = self._device_packet(tx.shift, list(tx.bits))
            packet = amplitude_from_db(tx.power_gain_db) * packet
            if tx.cfo_hz:
                packet = apply_cfo(packet, tx.cfo_hz, fs)
            phase = float(self._rng.uniform(0.0, 2.0 * np.pi))
            packet = packet * np.exp(1j * phase)
            channel = self._channel_for_device()
            if channel is not None:
                packet = channel.apply(packet, fs)
            delay_samples = int(round(tx.delay_s * fs))
            start = lead + delay_samples
            if start < 0:
                raise ConfigurationError("negative absolute delay")
            end = min(start + packet.size, total.size)
            total[start:end] += packet[: end - start]

        if snr_db is not None:
            # The critical-rate stream is formed by direct subsampling,
            # which preserves per-sample signal and noise power, so
            # adding noise at `snr_db` here yields exactly `snr_db`
            # in-band at the receiver (a brick-wall pre-decimation
            # filter would instead buy 10*log10(os) dB; we model the
            # conservative unfiltered receiver).
            total = awgn(total, snr_db, self._rng)

        stream = total[:: self._os]
        return WaveformScenario(
            stream=stream,
            oversampled=total,
            true_start=lead // self._os,
            oversampling=self._os,
        )


def cross_validate_paths(
    config: NetScatterConfig,
    transmissions: Sequence[DeviceTransmission],
    snr_db: float,
    rng: RngLike = None,
) -> Dict[str, Dict[int, List[int]]]:
    """Decode the same scenario on both simulation paths.

    Returns per-path ``device -> bits`` maps so callers (and the test
    suite) can verify the bin-domain fast path agrees with the full
    waveform path on identical scenarios.
    """
    from repro.core.dcss import compose_preamble_and_payload_symbols
    from repro.core.receiver import NetScatterReceiver

    generator = make_rng(rng)
    assignments = {i: tx.shift for i, tx in enumerate(transmissions)}
    receiver = NetScatterReceiver(config, assignments)
    n_payload = len(list(transmissions[0].bits))

    simulator = WaveformSimulator(config, rng=generator)
    scenario = simulator.render(transmissions, snr_db=snr_db)
    waveform_decode = receiver.decode_frame(
        scenario.stream, n_payload_bits=n_payload
    )

    symbols = compose_preamble_and_payload_symbols(
        config.chirp_params, transmissions, rng=generator
    )
    noisy = [awgn(s, snr_db, generator) for s in symbols]
    fast_decode = receiver.decode_fast_symbols(noisy)

    return {
        "waveform": {
            i: waveform_decode.bits_of(i) for i in assignments
        },
        "fast": {i: fast_decode.bits_of(i) for i in assignments},
    }
