"""Saleh-Valenzuela-style indoor multipath model.

The paper's Section 3.2.1 cites indoor delay spreads of 50-300 ns and shows
that at 500 kHz this is at most 0.15 FFT bins — negligible. We implement a
simplified Saleh-Valenzuela tap generator anyway so the waveform-fidelity
path can carry realistic multipath, and so the claim itself ("delay spread
is negligible at these bandwidths") can be tested rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.constants import (
    MULTIPATH_DELAY_SPREAD_MAX_S,
    MULTIPATH_DELAY_SPREAD_MIN_S,
)
from repro.errors import ReproError
from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class MultipathTap:
    """A single channel tap: delay (s) and complex gain."""

    delay_s: float
    gain: complex


@dataclass(frozen=True)
class MultipathChannel:
    """A set of taps; apply to an oversampled waveform via tapped sum."""

    taps: List[MultipathTap]

    def __post_init__(self) -> None:
        if not self.taps:
            raise ReproError("a channel needs at least one tap")

    @property
    def rms_delay_spread_s(self) -> float:
        """Power-weighted RMS delay spread of the tap set."""
        delays = np.array([t.delay_s for t in self.taps])
        powers = np.array([abs(t.gain) ** 2 for t in self.taps])
        total = powers.sum()
        if total <= 0:
            raise ReproError("channel has zero total power")
        mean = float((powers * delays).sum() / total)
        second = float((powers * delays**2).sum() / total)
        return float(np.sqrt(max(0.0, second - mean**2)))

    def normalized(self) -> "MultipathChannel":
        """Unit-total-power copy of the channel."""
        total = sum(abs(t.gain) ** 2 for t in self.taps)
        scale = 1.0 / np.sqrt(total)
        return MultipathChannel(
            taps=[MultipathTap(t.delay_s, t.gain * scale) for t in self.taps]
        )

    def apply(self, signal: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Convolve ``signal`` with the tapped delay line.

        Delays are rounded to the sample grid, so use an oversampled
        waveform for sub-sample fidelity. Output has the same length as
        the input (tail truncated), matching a steady-state receive window.
        """
        if sample_rate_hz <= 0:
            raise ReproError("sample rate must be positive")
        signal = np.asarray(signal, dtype=complex)
        out = np.zeros_like(signal)
        for tap in self.taps:
            shift = int(round(tap.delay_s * sample_rate_hz))
            if shift >= signal.size:
                continue
            if shift == 0:
                out += tap.gain * signal
            else:
                out[shift:] += tap.gain * signal[:-shift]
        return out


def saleh_valenzuela_channel(
    rng: RngLike = None,
    n_clusters: int = 3,
    rays_per_cluster: int = 4,
    cluster_decay_s: float = 60e-9,
    ray_decay_s: float = 20e-9,
    cluster_rate_hz: float = 1.0 / 100e-9,
    ray_rate_hz: float = 1.0 / 20e-9,
) -> MultipathChannel:
    """Draw a simplified Saleh-Valenzuela channel realisation.

    Clusters arrive as a Poisson process; rays within each cluster likewise;
    tap powers decay doubly exponentially. Defaults produce RMS delay
    spreads inside the paper's cited 50-300 ns indoor range.
    """
    if n_clusters < 1 or rays_per_cluster < 1:
        raise ReproError("need at least one cluster and one ray")
    generator = make_rng(rng)
    taps: List[MultipathTap] = []
    cluster_time = 0.0
    for _ in range(n_clusters):
        ray_time = 0.0
        for _ in range(rays_per_cluster):
            delay = cluster_time + ray_time
            mean_power = np.exp(-cluster_time / cluster_decay_s) * np.exp(
                -ray_time / ray_decay_s
            )
            amplitude = np.sqrt(mean_power / 2.0)
            gain = complex(
                generator.normal(scale=amplitude),
                generator.normal(scale=amplitude),
            )
            taps.append(MultipathTap(delay_s=delay, gain=gain))
            ray_time += generator.exponential(1.0 / ray_rate_hz)
        cluster_time += generator.exponential(1.0 / cluster_rate_hz)
    return MultipathChannel(taps=taps).normalized()


def delay_spread_in_bins(delay_spread_s: float, bandwidth_hz: float) -> float:
    """FFT-bin smear caused by a delay spread: ``spread * BW``.

    The paper's negligibility argument: 300 ns at 500 kHz is 0.15 bins.
    """
    if delay_spread_s < 0:
        raise ReproError("delay spread must be non-negative")
    return delay_spread_s * bandwidth_hz


def paper_delay_spread_range_bins(bandwidth_hz: float) -> tuple:
    """The cited 50-300 ns range expressed in FFT bins at ``bandwidth_hz``."""
    return (
        delay_spread_in_bins(MULTIPATH_DELAY_SPREAD_MIN_S, bandwidth_hz),
        delay_spread_in_bins(MULTIPATH_DELAY_SPREAD_MAX_S, bandwidth_hz),
    )
