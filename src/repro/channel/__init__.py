"""Propagation substrate: noise, path loss, multipath, fading and offsets.

The paper's evaluation runs over an indoor office deployment; this package
provides the synthetic equivalents — a log-distance indoor path-loss model
with wall losses, Saleh-Valenzuela-style delay spread, a temporal fading
process matching the measured +/-5 dB SNR variance (Fig. 9), and models of
the timing/frequency offsets the hardware introduces.
"""

from repro.channel.awgn import awgn, noise_power_dbm, snr_after_despreading_db
from repro.channel.deployment import Deployment, DeployedDevice, generate_office_deployment
from repro.channel.fading import FadingProcess
from repro.channel.link import LinkBudget, uplink_snr_db, downlink_rssi_dbm
from repro.channel.offsets import TimingOffsetModel, FrequencyOffsetModel, doppler_bin_shift
from repro.channel.pathloss import indoor_path_loss_db, free_space_path_loss_db

__all__ = [
    "awgn",
    "noise_power_dbm",
    "snr_after_despreading_db",
    "Deployment",
    "DeployedDevice",
    "generate_office_deployment",
    "FadingProcess",
    "LinkBudget",
    "uplink_snr_db",
    "downlink_rssi_dbm",
    "TimingOffsetModel",
    "FrequencyOffsetModel",
    "doppler_bin_shift",
    "indoor_path_loss_db",
    "free_space_path_loss_db",
]
