"""Temporal SNR variation (fading) process.

Fig. 9 of the paper measures the SNR variance of eight office devices over
30 minutes with people walking around: variations stay within roughly
+/-5 dB of the mean. We model the per-device SNR track as a first-order
Gauss-Markov (AR(1)) process in dB, which captures both the bounded
variance and the temporal correlation that makes the paper's reciprocity-
based power control effective (the channel seen at query time predicts the
channel a packet time later).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import RngLike, make_rng


@dataclass
class FadingProcess:
    """AR(1) shadow-fading track in dB around a mean SNR.

    Attributes
    ----------
    mean_snr_db:
        Long-run mean of the track.
    std_db:
        Stationary standard deviation; ~1.5 dB reproduces Fig. 9's
        +/-5 dB (3-sigma-ish) variation envelope.
    coherence_time_s:
        Time constant of the exponential autocorrelation (people walking
        indoors decorrelate the channel over a few seconds).
    """

    mean_snr_db: float
    std_db: float = 1.5
    coherence_time_s: float = 3.0

    def __post_init__(self) -> None:
        if self.std_db < 0:
            raise ReproError("std_db must be non-negative")
        if self.coherence_time_s <= 0:
            raise ReproError("coherence_time_s must be positive")
        self._state_db = 0.0

    @property
    def current_snr_db(self) -> float:
        """SNR at the current state of the track."""
        return self.mean_snr_db + self._state_db

    def reset(self, rng: RngLike = None) -> None:
        """Redraw the state from the stationary distribution."""
        generator = make_rng(rng)
        self._state_db = (
            generator.normal(scale=self.std_db) if self.std_db > 0 else 0.0
        )

    def step(self, dt_s: float, rng: RngLike = None) -> float:
        """Advance the track by ``dt_s`` seconds; returns the new SNR (dB).

        AR(1) update: ``x' = rho * x + sqrt(1 - rho^2) * w`` with
        ``rho = exp(-dt / tau)``, which keeps the stationary variance at
        ``std_db**2`` for any step size.
        """
        if dt_s < 0:
            raise ReproError("dt_s must be non-negative")
        generator = make_rng(rng)
        rho = float(np.exp(-dt_s / self.coherence_time_s))
        innovation_std = self.std_db * float(np.sqrt(max(0.0, 1.0 - rho**2)))
        noise = generator.normal(scale=innovation_std) if innovation_std > 0 else 0.0
        self._state_db = rho * self._state_db + noise
        return self.current_snr_db

    def track(
        self, duration_s: float, dt_s: float, rng: RngLike = None
    ) -> np.ndarray:
        """Sample a full SNR track of ``duration_s`` at ``dt_s`` spacing."""
        if dt_s <= 0:
            raise ReproError("dt_s must be positive")
        generator = make_rng(rng)
        n_steps = int(round(duration_s / dt_s))
        if n_steps < 1:
            raise ReproError("duration shorter than one step")
        out = np.empty(n_steps)
        for i in range(n_steps):
            out[i] = self.step(dt_s, generator)
        return out


def step_tracks(
    processes: "list[FadingProcess]",
    dt_s: float,
    n_steps: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Advance a population of fading tracks ``n_steps`` rounds at once.

    Returns the ``(n_steps, n_processes)`` SNR track (dB) and leaves
    every process's state advanced to the final step, exactly as if
    :meth:`FadingProcess.step` had been called once per process per
    round. The innovation draws consume a shared generator in the same
    round-major, process-order sequence as that loop (processes whose
    innovation is degenerate draw nothing, matching ``step``'s gating),
    so a given seed produces the *identical* track either way — which is
    what lets the batched network simulator pin same-seed equivalence
    against the per-round path.

    The AR(1) recursion itself is the only per-step work (one fused
    multiply-add over the population); all Gaussian draws happen in a
    single generator call.
    """
    if dt_s < 0:
        raise ReproError("dt_s must be non-negative")
    if n_steps < 1:
        raise ReproError("need at least one step")
    if not processes:
        raise ReproError("need at least one process")
    generator = make_rng(rng)
    n = len(processes)
    rho = np.array(
        [np.exp(-dt_s / p.coherence_time_s) for p in processes]
    )
    innovation_std = np.array(
        [p.std_db for p in processes]
    ) * np.sqrt(np.clip(1.0 - rho**2, 0.0, None))
    means = np.array([p.mean_snr_db for p in processes])
    states = np.array([p._state_db for p in processes])

    active = innovation_std > 0
    noise = np.zeros((n_steps, n))
    if active.all():
        noise = generator.standard_normal((n_steps, n)) * innovation_std
    elif active.any():
        draws = generator.standard_normal((n_steps, int(active.sum())))
        noise[:, active] = draws * innovation_std[active]

    track = np.empty((n_steps, n))
    for i in range(n_steps):
        states = rho * states + noise[i]
        track[i] = states
    track += means
    for process, state in zip(processes, states):
        process._state_db = float(state)
    return track


def snr_variance_samples(
    process: FadingProcess,
    duration_s: float,
    dt_s: float,
    window_s: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Windowed SNR deviations, the quantity plotted in Fig. 9.

    The figure plots the CDF of SNR *variation* (deviation from the
    device's windowed mean) over a 30-minute office recording; this helper
    produces the same per-sample deviations from a simulated track.
    """
    track = process.track(duration_s, dt_s, rng)
    window = max(1, int(round(window_s / dt_s)))
    n_windows = track.size // window
    if n_windows < 1:
        raise ReproError("window longer than the track")
    deviations = []
    for w in range(n_windows):
        chunk = track[w * window : (w + 1) * window]
        deviations.extend(chunk - chunk.mean())
    return np.asarray(deviations)
