"""Synthetic office deployment generator.

The paper deploys 256 tags across one office floor spanning 10+ rooms
(Fig. 1). We generate an equivalent floorplan: a rectangular floor divided
into a grid of rooms, the AP near the centre, devices placed uniformly;
each device's wall count is the number of room boundaries crossed by the
straight line to the AP. The output of this module is the per-device
uplink SNR / downlink RSSI distribution that every network experiment
consumes — the quantity the real deployment would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.channel.awgn import snr_from_rssi_db
from repro.channel.fading import FadingProcess
from repro.channel.link import LinkBudget
from repro.errors import ReproError
from repro.utils.rng import RngLike, child_rng, make_rng


@dataclass
class DeployedDevice:
    """One tag in the synthetic deployment."""

    device_id: int
    position_m: Tuple[float, float]
    distance_m: float
    n_walls: int
    uplink_snr_db: float
    downlink_rssi_dbm: float
    fading: FadingProcess = field(repr=False, default=None)

    def current_uplink_snr_db(self) -> float:
        """Instantaneous uplink SNR including the fading state."""
        if self.fading is None:
            return self.uplink_snr_db
        return self.fading.current_snr_db

    def step_channel(self, dt_s: float, rng: RngLike = None) -> float:
        """Advance the fading track; returns the new uplink SNR."""
        if self.fading is None:
            return self.uplink_snr_db
        return self.fading.step(dt_s, rng)


@dataclass
class Deployment:
    """A generated floorplan with its devices and link budget."""

    devices: List[DeployedDevice]
    ap_position_m: Tuple[float, float]
    floor_size_m: Tuple[float, float]
    budget: LinkBudget

    def __post_init__(self) -> None:
        if not self.devices:
            raise ReproError("deployment has no devices")

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def snrs_db(self) -> np.ndarray:
        """Static per-device uplink SNRs (dB), in device-id order."""
        return np.array([d.uplink_snr_db for d in self.devices])

    def snr_spread_db(self) -> float:
        """Dynamic range of the deployment: max - min uplink SNR."""
        snrs = self.snrs_db()
        return float(snrs.max() - snrs.min())

    @classmethod
    def from_snrs(
        cls,
        snrs_db,
        device_ids=None,
        downlink_rssi_dbm: float = -30.0,
        budget: LinkBudget = None,
    ) -> "Deployment":
        """Wrap bare uplink SNRs in a static (no-fading) deployment.

        The bridge from the flat population layer to the sample-level
        engine: a Monte-Carlo leg of the hybrid fidelity split hands the
        group's effective SNR column straight to
        :class:`repro.protocol.network.NetworkSimulator` without
        synthesising a floorplan. Positions/distances are placeholders
        (the engine only reads ``uplink_snr_db`` and, with power control
        off, never the geometry) and fading is disabled so the SNRs are
        taken as the authoritative post-power-control values.
        """
        snrs = np.asarray(snrs_db, dtype=float)
        if snrs.ndim != 1:
            raise ReproError("snrs_db must be one-dimensional")
        if device_ids is None:
            device_ids = range(snrs.size)
        ids = [int(d) for d in device_ids]
        if len(ids) != snrs.size:
            raise ReproError("device_ids must align with snrs_db")
        if budget is None:
            budget = LinkBudget()
        devices = [
            DeployedDevice(
                device_id=device_id,
                position_m=(1.0, 0.0),
                distance_m=1.0,
                n_walls=0,
                uplink_snr_db=float(snr),
                downlink_rssi_dbm=float(downlink_rssi_dbm),
                fading=None,
            )
            for device_id, snr in zip(ids, snrs)
        ]
        return cls(
            devices=devices,
            ap_position_m=(0.0, 0.0),
            floor_size_m=(2.0, 2.0),
            budget=budget,
        )

    def subset(self, n: int) -> "Deployment":
        """First ``n`` devices (used for the device-count sweeps)."""
        if not 1 <= n <= self.n_devices:
            raise ReproError(
                f"subset size must be in [1, {self.n_devices}], got {n}"
            )
        return Deployment(
            devices=self.devices[:n],
            ap_position_m=self.ap_position_m,
            floor_size_m=self.floor_size_m,
            budget=self.budget,
        )


def _count_walls(
    ap: Tuple[float, float],
    device: Tuple[float, float],
    room_size_m: float,
) -> int:
    """Room-grid boundaries crossed by the AP-to-device line.

    Interior walls lie on the room grid; each integer grid line crossed in
    x or y is one wall.
    """
    walls = 0
    for axis in (0, 1):
        lo = min(ap[axis], device[axis]) / room_size_m
        hi = max(ap[axis], device[axis]) / room_size_m
        walls += max(0, int(np.floor(hi)) - int(np.ceil(lo)) + 1)
    return walls


def generate_office_deployment(
    n_devices: int = 256,
    floor_size_m: Tuple[float, float] = (50.0, 25.0),
    room_size_m: float = 8.0,
    rng: RngLike = None,
    budget: LinkBudget = None,
    fading_std_db: float = 1.5,
    min_distance_m: float = 1.0,
) -> Deployment:
    """Generate a floorplan deployment matching the paper's setting.

    A 50 x 25 m floor with 8 m rooms yields ~18 rooms ("more than ten");
    the AP sits at the floor centre. Device SNRs then span roughly 35-40 dB
    between the nearest and farthest tags, the regime the power-aware
    allocation is designed for.
    """
    if n_devices < 1:
        raise ReproError("need at least one device")
    if room_size_m <= 0:
        raise ReproError("room size must be positive")
    generator = make_rng(rng)
    if budget is None:
        budget = LinkBudget()
    ap = (floor_size_m[0] / 2.0, floor_size_m[1] / 2.0)
    devices: List[DeployedDevice] = []
    for device_id in range(n_devices):
        x = float(generator.uniform(0.0, floor_size_m[0]))
        y = float(generator.uniform(0.0, floor_size_m[1]))
        distance = float(np.hypot(x - ap[0], y - ap[1]))
        distance = max(distance, min_distance_m)
        n_walls = _count_walls(ap, (x, y), room_size_m)
        snr = budget.uplink_snr_db(distance, n_walls)
        rssi = budget.downlink_rssi_dbm(distance, n_walls)
        fading = FadingProcess(mean_snr_db=snr, std_db=fading_std_db)
        fading.reset(child_rng(generator, device_id))
        devices.append(
            DeployedDevice(
                device_id=device_id,
                position_m=(x, y),
                distance_m=distance,
                n_walls=n_walls,
                uplink_snr_db=snr,
                downlink_rssi_dbm=rssi,
                fading=fading,
            )
        )
    return Deployment(
        devices=devices,
        ap_position_m=ap,
        floor_size_m=floor_size_m,
        budget=budget,
    )


def paper_deployment(
    n_devices: int = 256, rng: RngLike = None
) -> Deployment:
    """The calibrated deployment used by the Fig. 17-19 experiments.

    Parameters are tuned so the synthetic floor reproduces the paper's
    observed operating envelope: a 40 x 20 m office floor (about fifteen
    8 m rooms), devices no closer than 4 m to the AP, a mild indoor
    path-loss exponent (2.0 plus explicit 2 dB wall losses at 900 MHz),
    giving a pre-power-control uplink SNR spread of roughly 40 dB that
    the three-level power adjustment trims to the ~35 dB dynamic range
    the receiver tolerates (Fig. 15b).
    """
    budget = LinkBudget(path_loss_exponent=2.0, wall_loss_db=2.0)
    return generate_office_deployment(
        n_devices=n_devices,
        floor_size_m=(40.0, 20.0),
        room_size_m=8.0,
        rng=rng,
        budget=budget,
        min_distance_m=4.0,
    )


def snr_from_downlink_rssi(
    rssi_dbm: float, budget: LinkBudget = None
) -> float:
    """Uplink SNR a tag can infer from the downlink query RSSI.

    Channel reciprocity (Section 3.2.3's fine-grained power adjustment):
    the downlink one-way loss predicts the uplink two-way loss, so the
    query RSSI is a usable proxy for the tag's SNR at the AP.
    """
    if budget is None:
        budget = LinkBudget()
    one_way_loss = budget.ap_tx_power_dbm + budget.tag_antenna_gain_dbi - rssi_dbm
    uplink_rssi = (
        budget.ap_tx_power_dbm
        + 2.0 * budget.tag_antenna_gain_dbi
        - 2.0 * one_way_loss
        - budget.backscatter_insertion_loss_db
    )
    return snr_from_rssi_db(
        uplink_rssi, budget.bandwidth_hz, budget.noise_figure_db
    )
