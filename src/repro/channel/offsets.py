"""Timing, frequency and Doppler offset models.

These are the imperfection sources of Sections 3.2.1-3.2.2 and the Fig. 14
measurements: per-packet MCU/envelope-detector delay jitter, per-device
crystal frequency offsets, and motion-induced Doppler. Each model converts
its physical quantity to the FFT-bin shift the decoder actually sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CARRIER_FREQ_HZ,
    HW_DELAY_JITTER_MAX_S,
    TAG_FREQ_OFFSET_MAX_HZ,
)
from repro.errors import ReproError
from repro.phy.chirp import ChirpParams
from repro.utils.conversions import (
    doppler_shift_hz,
    freq_offset_to_bins,
    timing_offset_to_bins,
)
from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class TimingOffsetModel:
    """Per-packet hardware delay jitter of a backscatter tag.

    The tag's envelope detector receives the query, interrupts the MCU,
    and the FPGA starts the chirp — each step adds a variable latency. The
    paper measures total jitter up to ~3.5 us. We model the per-packet
    delay as a truncated Gaussian over ``[0, max_delay_s]``: strictly
    non-negative (the tag can only be late, never early) with most mass
    near the typical latency.
    """

    max_delay_s: float = HW_DELAY_JITTER_MAX_S
    mean_delay_s: float = HW_DELAY_JITTER_MAX_S / 3.0
    std_delay_s: float = HW_DELAY_JITTER_MAX_S / 4.0

    def __post_init__(self) -> None:
        if self.max_delay_s < 0 or self.std_delay_s < 0:
            raise ReproError("delays must be non-negative")

    def sample_delay_s(self, rng: RngLike = None) -> float:
        """Draw one per-packet hardware delay (seconds)."""
        generator = make_rng(rng)
        for _ in range(64):
            value = generator.normal(self.mean_delay_s, self.std_delay_s)
            if 0.0 <= value <= self.max_delay_s:
                return float(value)
        return float(np.clip(self.mean_delay_s, 0.0, self.max_delay_s))

    def sample_bin_offset(
        self, params: ChirpParams, rng: RngLike = None
    ) -> float:
        """Per-packet FFT-bin shift: ``dt * BW`` (Section 3.2.1)."""
        return timing_offset_to_bins(
            self.sample_delay_s(rng), params.bandwidth_hz
        )

    def worst_case_bins(self, params: ChirpParams) -> float:
        """Largest bin shift the jitter can cause at this bandwidth."""
        return timing_offset_to_bins(self.max_delay_s, params.bandwidth_hz)


@dataclass(frozen=True)
class FrequencyOffsetModel:
    """Per-device crystal frequency offset.

    A tag synthesises only its few-MHz baseband, so a crystal error of
    ``ppm`` parts-per-million yields ``ppm * f_baseband`` hertz of offset —
    roughly 90x smaller than an active 900 MHz radio with the same crystal
    (the Section 2.2 argument against Choir for backscatter).
    """

    oscillator_freq_hz: float
    tolerance_ppm: float = 50.0

    def __post_init__(self) -> None:
        if self.oscillator_freq_hz <= 0:
            raise ReproError("oscillator frequency must be positive")
        if self.tolerance_ppm < 0:
            raise ReproError("tolerance must be non-negative")

    @property
    def max_offset_hz(self) -> float:
        """Worst-case frequency offset magnitude."""
        return self.oscillator_freq_hz * self.tolerance_ppm * 1e-6

    def sample_offset_hz(self, rng: RngLike = None) -> float:
        """Draw a per-device offset, uniform over the tolerance window.

        Crystal cut errors are fixed per part; uniform over the tolerance
        band is the standard conservative assumption.
        """
        generator = make_rng(rng)
        return float(
            generator.uniform(-self.max_offset_hz, self.max_offset_hz)
        )

    def sample_bin_offset(
        self, params: ChirpParams, rng: RngLike = None
    ) -> float:
        """Per-device FFT-bin shift: ``2^SF * df / BW`` (Section 3.2.2)."""
        return freq_offset_to_bins(
            self.sample_offset_hz(rng),
            params.bandwidth_hz,
            params.spreading_factor,
        )


def backscatter_frequency_model(
    tolerance_ppm: float = 50.0,
) -> FrequencyOffsetModel:
    """Offset model of a tag clocking a 3 MHz baseband subcarrier."""
    from repro.constants import BACKSCATTER_BASEBAND_FREQ_HZ

    return FrequencyOffsetModel(
        oscillator_freq_hz=BACKSCATTER_BASEBAND_FREQ_HZ,
        tolerance_ppm=tolerance_ppm,
    )


def radio_frequency_model(
    tolerance_ppm: float = 50.0,
) -> FrequencyOffsetModel:
    """Offset model of an active LoRa radio synthesising 900 MHz."""
    return FrequencyOffsetModel(
        oscillator_freq_hz=CARRIER_FREQ_HZ, tolerance_ppm=tolerance_ppm
    )


def doppler_bin_shift(
    speed_m_s: float,
    params: ChirpParams,
    carrier_freq_hz: float = CARRIER_FREQ_HZ,
) -> float:
    """FFT-bin shift caused by motion at ``speed_m_s`` (Section 4.2).

    10 m/s at 900 MHz gives 30 Hz — far below the ~1 kHz bin spacing of
    the deployed configuration, which is why Fig. 15a is flat.
    """
    shift_hz = doppler_shift_hz(speed_m_s, carrier_freq_hz)
    return freq_offset_to_bins(
        shift_hz, params.bandwidth_hz, params.spreading_factor
    )


def residual_bin_offset(
    params: ChirpParams,
    timing_model: TimingOffsetModel,
    frequency_model: FrequencyOffsetModel,
    rng: RngLike = None,
) -> float:
    """One combined per-packet bin offset draw (timing + frequency).

    This is the quantity whose tail Fig. 14b plots for three
    configurations; the timing term dominates for backscatter hardware.
    """
    generator = make_rng(rng)
    return timing_model.sample_bin_offset(params, generator) + abs(
        frequency_model.sample_bin_offset(params, generator)
    )


def paper_tag_offset_observed_hz() -> float:
    """The measured bound on tag frequency offsets (Fig. 14a)."""
    return TAG_FREQ_OFFSET_MAX_HZ
