"""Complex additive white Gaussian noise and CSS SNR accounting.

SNR conventions
---------------
Throughout the library, "SNR" means the *pre-despreading* in-band SNR over
the chirp bandwidth, matching the paper's figures (e.g. BER at -20 to
-10 dB in Fig. 12 — below the noise floor). Dechirping plus the ``2^SF``
point FFT provides a processing gain of ``2^SF`` (coherent integration over
the symbol), which is what lets CSS decode below the noise floor.
"""

from __future__ import annotations

import numpy as np

from repro.constants import THERMAL_NOISE_DBM_PER_HZ
from repro.errors import LinkBudgetError
from repro.utils.conversions import db_to_linear, linear_to_db
from repro.utils.rng import RngLike, make_rng, standard_complex_normal


def awgn(
    signal: np.ndarray,
    snr_db: float,
    rng: RngLike = None,
    signal_power: float = 1.0,
) -> np.ndarray:
    """Add complex AWGN realising ``snr_db`` against ``signal_power``.

    ``signal_power`` is the *reference* power of a unit transmitter (the
    chirp symbols here have unit power), not the measured power of
    ``signal`` — important for OOK, where '0' symbols are silent but the
    noise level must not change, and for multi-device sums, where SNR is
    defined per-device.
    """
    signal = np.asarray(signal, dtype=complex)
    if signal_power <= 0:
        raise LinkBudgetError("signal_power must be positive")
    noise_power = signal_power / db_to_linear(snr_db)
    generator = make_rng(rng)
    scale = np.sqrt(noise_power / 2.0)
    noise = generator.normal(scale=scale, size=signal.shape) + 1j * generator.normal(
        scale=scale, size=signal.shape
    )
    return signal + noise


def awgn_rounds(
    signal: np.ndarray,
    snr_db,
    rng: RngLike = None,
    signal_power: float = 1.0,
) -> np.ndarray:
    """Batched complex AWGN over a ``(n_rounds, ...)`` signal tensor.

    The per-round loop used to spend ~20% of a Fig. 12 sweep inside
    ``Generator.normal`` call overhead; this draws the Gaussian pairs
    for the whole batch in a single interleaved call. ``snr_db`` may be
    a scalar (one level for every round) or a length-``n_rounds`` array
    (e.g. fading rounds, where the weakest device per round sets the
    noise reference).

    The same ``signal_power`` reference convention as :func:`awgn`
    applies: the noise level realises the SNR against a unit transmitter,
    not against the measured power of ``signal``.
    """
    signal = np.asarray(signal, dtype=complex)
    if signal.ndim < 1:
        raise LinkBudgetError("signal must have a leading round axis")
    if signal_power <= 0:
        raise LinkBudgetError("signal_power must be positive")
    snr = np.asarray(snr_db, dtype=float)
    if snr.ndim > 1 or (snr.ndim == 1 and snr.size != signal.shape[0]):
        raise LinkBudgetError(
            "snr_db must be scalar or one value per round"
        )
    noise_power = signal_power / 10.0 ** (snr / 10.0)
    scale = np.sqrt(noise_power)
    if scale.ndim == 1:
        scale = scale.reshape((-1,) + (1,) * (signal.ndim - 1))
    noise = standard_complex_normal(rng, signal.shape)
    return signal + scale * noise


def noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 6.0) -> float:
    """Receiver noise power over ``bandwidth_hz`` (dBm).

    Thermal floor (-174 dBm/Hz) plus a receiver noise figure; 6 dB is a
    typical software-radio front end and reproduces the paper's -123 dBm
    sensitivity for the (500 kHz, SF 9) configuration within ~1 dB.
    """
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    return THERMAL_NOISE_DBM_PER_HZ + 10.0 * np.log10(bandwidth_hz) + noise_figure_db


def processing_gain_db(spreading_factor: int) -> float:
    """CSS despreading gain, ``10*log10(2^SF)`` dB."""
    if spreading_factor < 1:
        raise LinkBudgetError("spreading factor must be >= 1")
    return 10.0 * np.log10(2 ** int(spreading_factor))


def snr_after_despreading_db(snr_db: float, spreading_factor: int) -> float:
    """Post-FFT per-bin SNR given the pre-despreading in-band SNR."""
    return snr_db + processing_gain_db(spreading_factor)


def sensitivity_dbm(
    bandwidth_hz: float,
    spreading_factor: int,
    required_postfft_snr_db: float = 15.0,
    noise_figure_db: float = 6.0,
) -> float:
    """Receive sensitivity of a CSS configuration (dBm).

    The minimum signal power such that the post-despreading SNR meets
    ``required_postfft_snr_db``. The 15 dB default reflects noncoherent
    peak detection with margin and reproduces the SX1276 sensitivities
    (and the paper's Table 1 values) to within about 1.5 dB — e.g.
    about -123 dBm at 500 kHz / SF 9.
    """
    floor = noise_power_dbm(bandwidth_hz, noise_figure_db)
    return floor + required_postfft_snr_db - processing_gain_db(spreading_factor)


def snr_from_rssi_db(
    rssi_dbm: float, bandwidth_hz: float, noise_figure_db: float = 6.0
) -> float:
    """In-band SNR implied by an RSSI measurement."""
    return rssi_dbm - noise_power_dbm(bandwidth_hz, noise_figure_db)


def rssi_from_snr_dbm(
    snr_db: float, bandwidth_hz: float, noise_figure_db: float = 6.0
) -> float:
    """Inverse of :func:`snr_from_rssi_db`."""
    return snr_db + noise_power_dbm(bandwidth_hz, noise_figure_db)


def combined_snr_db(snrs_db: list) -> float:
    """Aggregate SNR of independent same-band transmitters.

    Section 3.1's capacity argument: N below-noise devices deposit N times
    the single-device power at the AP, so the aggregate SNR is the linear
    sum of the per-device SNRs.
    """
    if not snrs_db:
        raise LinkBudgetError("need at least one SNR")
    total = sum(db_to_linear(s) for s in snrs_db)
    return linear_to_db(total)
