"""Path-loss models: free space and log-distance indoor with wall losses.

The deployment covers 10+ office rooms within 100 m of the AP. We use the
standard log-distance model with a path-loss exponent typical of
through-wall office propagation, plus an explicit per-wall penalty so the
floorplan generator can produce the realistic 30-40 dB SNR spread between
near and far devices that drives the paper's near-far machinery.
"""

from __future__ import annotations

import math

from repro.constants import SPEED_OF_LIGHT_M_S
from repro.errors import LinkBudgetError

DEFAULT_PATH_LOSS_EXPONENT = 3.0
"""Typical indoor office through-wall exponent."""

DEFAULT_WALL_LOSS_DB = 5.0
"""Attenuation per interior wall (drywall at 900 MHz)."""

DEFAULT_REFERENCE_DISTANCE_M = 1.0


def free_space_path_loss_db(distance_m: float, freq_hz: float) -> float:
    """Friis free-space path loss (dB)."""
    if distance_m <= 0:
        raise LinkBudgetError("distance must be positive")
    if freq_hz <= 0:
        raise LinkBudgetError("frequency must be positive")
    wavelength = SPEED_OF_LIGHT_M_S / freq_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


def indoor_path_loss_db(
    distance_m: float,
    freq_hz: float,
    n_walls: int = 0,
    exponent: float = DEFAULT_PATH_LOSS_EXPONENT,
    wall_loss_db: float = DEFAULT_WALL_LOSS_DB,
    reference_distance_m: float = DEFAULT_REFERENCE_DISTANCE_M,
) -> float:
    """Log-distance indoor path loss with per-wall penalties (dB).

    Free-space loss up to ``reference_distance_m``, then a log-distance
    roll-off at ``exponent``, plus ``wall_loss_db`` for each interior wall
    on the path.
    """
    if distance_m <= 0:
        raise LinkBudgetError("distance must be positive")
    if n_walls < 0:
        raise LinkBudgetError("wall count must be non-negative")
    if exponent <= 0:
        raise LinkBudgetError("path-loss exponent must be positive")
    reference_loss = free_space_path_loss_db(reference_distance_m, freq_hz)
    if distance_m <= reference_distance_m:
        return reference_loss + n_walls * wall_loss_db
    rolloff = 10.0 * exponent * math.log10(distance_m / reference_distance_m)
    return reference_loss + rolloff + n_walls * wall_loss_db


def round_trip_backscatter_loss_db(
    distance_m: float,
    freq_hz: float,
    n_walls: int = 0,
    backscatter_insertion_loss_db: float = 6.0,
    **kwargs,
) -> float:
    """Two-way (AP -> tag -> AP) loss of a monostatic backscatter link.

    Backscatter reflects the AP's carrier, so the signal pays the path loss
    twice plus the tag's modulation insertion loss (conversion efficiency
    of the impedance switch; ~6 dB for ideal two-state square-wave OOK at
    the fundamental).
    """
    one_way = indoor_path_loss_db(distance_m, freq_hz, n_walls=n_walls, **kwargs)
    return 2.0 * one_way + backscatter_insertion_loss_db


def time_of_flight_s(distance_m: float) -> float:
    """One-way propagation delay."""
    if distance_m < 0:
        raise LinkBudgetError("distance must be non-negative")
    return distance_m / SPEED_OF_LIGHT_M_S


def round_trip_time_s(distance_m: float) -> float:
    """Two-way propagation delay (the tag echoes the AP's carrier)."""
    return 2.0 * time_of_flight_s(distance_m)
