"""Sampling helpers: oversampling, fractional delay and decimation.

The waveform-fidelity simulation path oversamples chirps (typically 4x the
chirp bandwidth, mirroring the paper's 4 Msps USRP capture of a 500 kHz
signal) so that sub-sample timing offsets and multipath taps can be applied
before decimating back to the symbol-rate grid the decoder uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def oversample(signal: np.ndarray, factor: int) -> np.ndarray:
    """Zero-order-hold oversampling by an integer ``factor``.

    A square-wave backscatter switch holds its state between baseband
    updates, so sample-and-hold (not sinc interpolation) is the faithful
    model of the tag's transmit chain.
    """
    if factor < 1:
        raise ReproError("oversampling factor must be >= 1")
    signal = np.asarray(signal)
    return np.repeat(signal, factor)


def decimate(signal: np.ndarray, factor: int, phase: int = 0) -> np.ndarray:
    """Pick every ``factor``-th sample starting at ``phase``."""
    if factor < 1:
        raise ReproError("decimation factor must be >= 1")
    if not 0 <= phase < factor:
        raise ReproError("phase must lie in [0, factor)")
    signal = np.asarray(signal)
    return signal[phase::factor]


def fractional_delay(signal: np.ndarray, delay_samples: float) -> np.ndarray:
    """Delay a complex signal by a (possibly fractional) number of samples.

    Implemented in the frequency domain, which is exact for the periodic
    chirp frames used by the simulator. Positive delay moves the signal
    later in time; the frame wraps cyclically, matching the cyclic-shift
    algebra of CSS symbols.
    """
    signal = np.asarray(signal, dtype=complex)
    if signal.size == 0:
        raise ReproError("cannot delay an empty signal")
    n = signal.size
    freqs = np.fft.fftfreq(n)
    spectrum = np.fft.fft(signal)
    return np.fft.ifft(spectrum * np.exp(-2j * np.pi * freqs * delay_samples))


def integer_roll(signal: np.ndarray, shift: int) -> np.ndarray:
    """Cyclic integer shift (positive = later in time)."""
    return np.roll(np.asarray(signal), int(shift))


def apply_cfo(
    signal: np.ndarray, cfo_hz: float, sample_rate_hz: float
) -> np.ndarray:
    """Apply a carrier frequency offset rotation to complex baseband."""
    if sample_rate_hz <= 0:
        raise ReproError("sample rate must be positive")
    signal = np.asarray(signal, dtype=complex)
    n = np.arange(signal.size)
    return signal * np.exp(2j * np.pi * cfo_hz * n / sample_rate_hz)


def pad_to_length(signal: np.ndarray, length: int) -> np.ndarray:
    """Zero-pad ``signal`` at the end up to ``length`` samples."""
    signal = np.asarray(signal)
    if length < signal.size:
        raise ReproError(
            f"target length {length} shorter than signal ({signal.size})"
        )
    out = np.zeros(length, dtype=signal.dtype)
    out[: signal.size] = signal
    return out
