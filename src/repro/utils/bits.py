"""Bit-level helpers: packing, CRC checksums and pseudo-random payloads.

The NetScatter link layer carries a 40-bit payload + CRC field. We provide
CRC-8 (ATM HEC polynomial) and CRC-16 (CCITT) implementations so packets can
carry a real checksum, plus packing helpers used by the protocol messages.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ProtocolError

CRC8_POLY = 0x07
CRC16_CCITT_POLY = 0x1021


def int_to_bits(value: int, width: int) -> List[int]:
    """Big-endian bit list of ``value`` over exactly ``width`` bits.

    >>> int_to_bits(5, 4)
    [0, 1, 0, 1]
    """
    if width < 0:
        raise ProtocolError("width must be non-negative")
    if value < 0:
        raise ProtocolError("value must be non-negative")
    if value >= (1 << width):
        raise ProtocolError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits`.

    >>> bits_to_int([0, 1, 0, 1])
    5
    """
    result = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ProtocolError(f"bit values must be 0 or 1, got {bit!r}")
        result = (result << 1) | bit
    return result


def bytes_to_bits(data: bytes) -> List[int]:
    """Expand bytes into a big-endian bit list."""
    bits: List[int] = []
    for byte in data:
        bits.extend(int_to_bits(byte, 8))
    return bits


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack a bit list (length multiple of 8) back into bytes."""
    if len(bits) % 8 != 0:
        raise ProtocolError("bit length must be a multiple of 8")
    out = bytearray()
    for i in range(0, len(bits), 8):
        out.append(bits_to_int(bits[i : i + 8]))
    return bytes(out)


def crc8(bits: Sequence[int], poly: int = CRC8_POLY, init: int = 0x00) -> int:
    """CRC-8 over a bit sequence (MSB-first), returning the 8-bit remainder."""
    crc = init
    for bit in bits:
        if bit not in (0, 1):
            raise ProtocolError(f"bit values must be 0 or 1, got {bit!r}")
        crc ^= bit << 7
        crc <<= 1
        if crc & 0x100:
            crc ^= (poly << 1) | 0x100  # keep the implicit x^8 term aligned
        crc &= 0xFF
    return crc


def crc16_ccitt(bits: Sequence[int], init: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over a bit sequence (MSB-first)."""
    crc = init
    for bit in bits:
        if bit not in (0, 1):
            raise ProtocolError(f"bit values must be 0 or 1, got {bit!r}")
        top = (crc >> 15) & 1
        crc = (crc << 1) & 0xFFFF
        if top ^ bit:
            crc ^= CRC16_CCITT_POLY
    return crc


def append_crc8(bits: Sequence[int]) -> List[int]:
    """Return ``bits`` with the CRC-8 remainder appended (8 extra bits)."""
    payload = list(bits)
    return payload + int_to_bits(crc8(payload), 8)


def check_crc8(bits: Sequence[int]) -> bool:
    """Validate a bit sequence produced by :func:`append_crc8`."""
    if len(bits) < 8:
        return False
    payload, tail = list(bits[:-8]), list(bits[-8:])
    return crc8(payload) == bits_to_int(tail)


def random_bits(n_bits: int, rng: np.random.Generator) -> List[int]:
    """Uniform random bit payload of length ``n_bits``."""
    if n_bits < 0:
        raise ProtocolError("n_bits must be non-negative")
    return rng.integers(0, 2, size=n_bits).tolist()


def hamming_distance(a: Iterable[int], b: Iterable[int]) -> int:
    """Number of positions at which two equal-length bit sequences differ."""
    a_list, b_list = list(a), list(b)
    if len(a_list) != len(b_list):
        raise ProtocolError(
            f"length mismatch: {len(a_list)} vs {len(b_list)} bits"
        )
    return int(sum(1 for x, y in zip(a_list, b_list) if x != y))
