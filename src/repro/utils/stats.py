"""Statistics helpers for BER counting and CDF-style paper figures.

Most NetScatter evaluation figures are empirical CDFs (Figs. 4, 9, 14) or
complementary CDFs on log axes (Figs. 14b, 15a). These helpers turn raw
sample arrays into the (x, y) series the benchmark harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ReproError


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``samples``.

    Returns sorted sample values and the CDF evaluated at each value.
    """
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise ReproError("cannot compute CDF of an empty sample set")
    y = np.arange(1, data.size + 1) / data.size
    return data, y


def complementary_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """1 - CDF, as used by the paper's log-scale tail plots (Fig. 14b)."""
    x, y = empirical_cdf(samples)
    return x, 1.0 - y + 1.0 / len(x)


def cdf_at(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples <= ``threshold``."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ReproError("cannot evaluate CDF of an empty sample set")
    return float(np.mean(data <= threshold))


def quantile(samples: Sequence[float], q: float) -> float:
    """Quantile with input validation (q in [0, 1])."""
    if not 0.0 <= q <= 1.0:
        raise ReproError(f"quantile must lie in [0, 1], got {q}")
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ReproError("cannot take quantile of an empty sample set")
    return float(np.quantile(data, q))


@dataclass(frozen=True)
class BerEstimate:
    """A bit-error-rate estimate with a Wilson confidence interval."""

    errors: int
    trials: int
    ber: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"BER {self.ber:.3e} ({self.errors}/{self.trials}, "
            f"95% CI [{self.ci_low:.3e}, {self.ci_high:.3e}])"
        )


def ber_estimate(errors: int, trials: int, z: float = 1.96) -> BerEstimate:
    """Wilson-score BER estimate.

    The Wilson interval behaves sensibly at zero errors, which matters for
    the paper's 1e-4 floor over 1e4 symbols.
    """
    if trials <= 0:
        raise ReproError("trials must be positive")
    if errors < 0 or errors > trials:
        raise ReproError("errors must lie in [0, trials]")
    p_hat = errors / trials
    denom = 1.0 + z**2 / trials
    centre = (p_hat + z**2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return BerEstimate(
        errors=errors,
        trials=trials,
        ber=p_hat,
        ci_low=max(0.0, centre - margin),
        ci_high=min(1.0, centre + margin),
    )


def db_variance(series_db: Sequence[float]) -> float:
    """Variance of a dB-valued series (used for Fig. 9's SNR variance)."""
    data = np.asarray(series_db, dtype=float)
    if data.size < 2:
        raise ReproError("need at least two samples for a variance")
    return float(np.var(data, ddof=1))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (for gain-factor summaries)."""
    data = np.asarray(values, dtype=float)
    if data.size == 0 or np.any(data <= 0):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(data))))
