"""Seeded random-generator plumbing.

Every stochastic component in the library accepts either a
``numpy.random.Generator`` or a plain integer seed. Centralising the
coercion here keeps experiments reproducible: the benchmark harness passes
integer seeds, and each module derives independent child streams where it
needs them.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-entropy generator; an existing generator is
    passed through untouched so callers can share one stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(rng: np.random.Generator, index: int) -> np.random.Generator:
    """Derive an independent child stream from ``rng``.

    Used when a simulation fans out over many devices: each device gets its
    own deterministic stream so adding a device does not perturb the noise
    seen by the others.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (index * 0x9E3779B97F4A7C15 & (2**63 - 1))
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list:
    """Create ``count`` independent generators from one seed."""
    base = make_rng(seed)
    return [child_rng(base, i) for i in range(count)]


def standard_complex_normal(rng: RngLike, shape) -> np.ndarray:
    """iid circular CN(0, 1) draws of the given shape.

    One interleaved real Gaussian call re-viewed as complex — identical
    statistics to two separate real/imaginary draws, half the RNG-call
    overhead. Each component has unit *complex* variance (real and
    imaginary parts each carry 1/2), so callers scale by the square
    root of the desired complex noise power.
    """
    generator = make_rng(rng)
    shape = tuple(shape)
    draws = generator.standard_normal(shape + (2,))
    return draws.view(complex).reshape(shape) * np.sqrt(0.5)


def optional_seed(seed: RngLike) -> Optional[int]:
    """Extract a reportable integer seed, or ``None`` for entropy seeding."""
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return None
