"""Seeded random-generator plumbing.

Every stochastic component in the library accepts either a
``numpy.random.Generator`` or a plain integer seed. Centralising the
coercion here keeps experiments reproducible: the benchmark harness passes
integer seeds, and each module derives independent child streams where it
needs them.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-entropy generator; an existing generator is
    passed through untouched so callers can share one stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_seed(rng: np.random.Generator, index: int) -> int:
    """Derive an independent child *seed* (a plain int) from ``rng``.

    The integer form of :func:`child_rng`: consuming one draw from
    ``rng``, it returns the exact seed that ``child_rng`` would have
    handed to ``numpy.random.default_rng``. Because the seed is a plain
    int it can be stored, hashed and shipped across processes — the
    campaign layer persists it on every sweep point so a stored result
    is reproducible (and content-addressable) from its record alone.
    """
    return int(rng.integers(0, 2**63 - 1)) ^ (
        index * 0x9E3779B97F4A7C15 & (2**63 - 1)
    )


def child_rng(rng: np.random.Generator, index: int) -> np.random.Generator:
    """Derive an independent child stream from ``rng``.

    Used when a simulation fans out over many devices: each device gets its
    own deterministic stream so adding a device does not perturb the noise
    seen by the others. Equivalent to seeding a fresh generator with
    :func:`child_seed` — the two stay interchangeable by construction.
    """
    return np.random.default_rng(child_seed(rng, index))


def spawn_rngs(seed: RngLike, count: int) -> list:
    """Create ``count`` independent generators from one seed."""
    base = make_rng(seed)
    return [child_rng(base, i) for i in range(count)]


def standard_complex_normal(
    rng: RngLike, shape, dtype=np.float64
) -> np.ndarray:
    """iid circular CN(0, 1) draws of the given shape.

    One interleaved real Gaussian call re-viewed as complex — identical
    statistics to two separate real/imaginary draws, half the RNG-call
    overhead. Each component has unit *complex* variance (real and
    imaginary parts each carry 1/2), so callers scale by the square
    root of the desired complex noise power.

    ``dtype`` is the *real* component dtype: ``numpy.float32`` yields
    ``complex64`` draws at roughly twice the generation rate (used by
    the single-precision analytic readout path; note the float32
    generator consumes a different stream than the float64 one).
    """
    generator = make_rng(rng)
    shape = tuple(shape)
    dtype = np.dtype(dtype)
    draws = generator.standard_normal(shape + (2,), dtype=dtype)
    complex_dtype = np.complex64 if dtype == np.float32 else complex
    return draws.view(complex_dtype).reshape(shape) * dtype.type(
        np.sqrt(0.5)
    )


def optional_seed(seed: RngLike) -> Optional[int]:
    """Extract a reportable integer seed, or ``None`` for entropy seeding."""
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return None
