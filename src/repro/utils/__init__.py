"""Utility helpers shared across the NetScatter reproduction.

Submodules
----------
``conversions``
    Decibel / linear / dBm / watt conversions and timing-to-bin maps.
``bits``
    Bit packing, CRC checksums and pseudo-random bit sequences.
``sampling``
    Oversampling, fractional delay and resampling helpers.
``stats``
    Empirical CDFs, quantiles and confidence intervals for BER counting.
``rng``
    Seeded random generator plumbing so every experiment is reproducible.
"""

from repro.utils.conversions import (
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
    power_db,
    amplitude_from_db,
)
from repro.utils.rng import make_rng

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "power_db",
    "amplitude_from_db",
    "make_rng",
]
