"""Decibel, power and bin-offset conversions.

These helpers are deliberately strict: power quantities must be positive,
and NaN inputs raise instead of propagating silently, because a silent NaN
in a link budget produces wrong BER curves that are hard to trace.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import LinkBudgetError


def db_to_linear(value_db: float) -> float:
    """Convert a decibel power ratio to a linear power ratio.

    >>> db_to_linear(10.0)
    10.0
    >>> db_to_linear(-3.0)  # doctest: +ELLIPSIS
    0.501...
    """
    return float(10.0 ** (np.asarray(value_db, dtype=float) / 10.0))


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises :class:`LinkBudgetError` for non-positive input because a zero or
    negative power has no decibel representation.
    """
    value = float(value)
    if not value > 0.0 or math.isnan(value):
        raise LinkBudgetError(f"cannot take dB of non-positive power {value!r}")
    return 10.0 * math.log10(value)


def dbm_to_watts(value_dbm: float) -> float:
    """Convert dBm to watts.

    >>> dbm_to_watts(30.0)
    1.0
    """
    return 10.0 ** ((float(value_dbm) - 30.0) / 10.0)


def watts_to_dbm(value_w: float) -> float:
    """Convert watts to dBm."""
    value_w = float(value_w)
    if not value_w > 0.0 or math.isnan(value_w):
        raise LinkBudgetError(f"cannot take dBm of non-positive power {value_w!r}")
    return 10.0 * math.log10(value_w) + 30.0


def power_db(signal: np.ndarray) -> float:
    """Mean power of a complex signal, in dB relative to unit power."""
    signal = np.asarray(signal)
    if signal.size == 0:
        raise LinkBudgetError("cannot compute power of an empty signal")
    mean_power = float(np.mean(np.abs(signal) ** 2))
    return linear_to_db(mean_power)


def amplitude_from_db(gain_db: float) -> float:
    """Amplitude scale factor realising a power gain given in dB.

    >>> amplitude_from_db(0.0)
    1.0
    >>> round(amplitude_from_db(-20.0), 6)
    0.1
    """
    return float(10.0 ** (float(gain_db) / 20.0))


def timing_offset_to_bins(delta_t_s: float, bandwidth_hz: float) -> float:
    """FFT-bin shift caused by a timing offset: ``delta_bin = dt * BW``.

    This is Section 3.2.1's relation for dechirped CSS symbols.
    """
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    return float(delta_t_s) * float(bandwidth_hz)


def bins_to_timing_offset(delta_bin: float, bandwidth_hz: float) -> float:
    """Inverse of :func:`timing_offset_to_bins`."""
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    return float(delta_bin) / float(bandwidth_hz)


def freq_offset_to_bins(
    delta_f_hz: float, bandwidth_hz: float, spreading_factor: int
) -> float:
    """FFT-bin shift caused by a carrier frequency offset.

    Section 3.2.2: ``delta_bin = 2^SF * df / BW`` (the bin spacing of a
    dechirped symbol is ``BW / 2^SF`` hertz).
    """
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    if spreading_factor < 1:
        raise LinkBudgetError("spreading factor must be >= 1")
    return float(delta_f_hz) * (2 ** int(spreading_factor)) / float(bandwidth_hz)


def bins_to_freq_offset(
    delta_bin: float, bandwidth_hz: float, spreading_factor: int
) -> float:
    """Inverse of :func:`freq_offset_to_bins`."""
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    if spreading_factor < 1:
        raise LinkBudgetError("spreading factor must be >= 1")
    return float(delta_bin) * float(bandwidth_hz) / (2 ** int(spreading_factor))


def doppler_shift_hz(speed_m_s: float, carrier_freq_hz: float) -> float:
    """Doppler frequency shift for a mover at ``speed_m_s``.

    Backscatter reflects the carrier, so the paper's Section 4.2 uses the
    one-way shift ``f_c * v / c`` for its estimate (30 Hz at 10 m/s and
    900 MHz); we follow that convention.
    """
    from repro.constants import SPEED_OF_LIGHT_M_S

    if speed_m_s < 0:
        raise LinkBudgetError("speed must be non-negative")
    return float(carrier_freq_hz) * float(speed_m_s) / SPEED_OF_LIGHT_M_S
