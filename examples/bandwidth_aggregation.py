#!/usr/bin/env python3
"""Bandwidth aggregation: double the devices, keep the bitrate (Fig. 5).

Shows Section 3.1's scaling path: instead of filtering two independent
bands (two FFTs, two filters), NetScatter spreads devices across one
2 x BW aggregate band. Chirps that sweep past the top edge alias down
automatically, and one 2 * 2^SF-point FFT decodes everyone.

Run:  python examples/bandwidth_aggregation.py
"""

import numpy as np

from repro.channel.awgn import awgn
from repro.core.aggregation import AggregateBand, compare_receiver_costs
from repro.phy.chirp import ChirpParams
from repro.phy.spectrum import instantaneous_frequency


def main() -> None:
    rng = np.random.default_rng(5)
    params = ChirpParams(bandwidth_hz=250e3, spreading_factor=8)
    band = AggregateBand(chirp_params=params, aggregation_factor=2)

    print(f"chirp bandwidth    : {params.bandwidth_hz / 1e3:.0f} kHz, "
          f"SF {params.spreading_factor}")
    print(f"aggregate band     : {band.total_bandwidth_hz / 1e3:.0f} kHz")
    print(f"frequency slots    : {band.n_slots} "
          f"(vs {params.n_shifts} in one band)")
    print(f"per-device bitrate : {params.symbol_rate_hz:.0f} bps "
          "(unchanged — that's the point)\n")

    # A device whose sweep crosses the top of the band wraps mid-symbol
    # (Fig. 5): its start frequency plus the chirp bandwidth exceeds the
    # aggregate band edge, so the sampled baseband aliases it down.
    wrap_slot = 200  # starts at ~195 kHz, sweeps past +250 kHz
    track = instantaneous_frequency(
        band.slot_waveform(wrap_slot), band.sample_rate_hz
    )
    wraps = int(np.sum(np.abs(np.diff(track)) > band.total_bandwidth_hz / 2))
    print(f"slot {wrap_slot}: sweep {track[1] / 1e3:+.0f} kHz -> "
          f"{track[-2] / 1e3:+.0f} kHz, wrapping {wraps} time(s) "
          "mid-symbol (aliasing at the band edge)")

    # Devices spread across both halves of the aggregate band; one FFT.
    active = sorted(rng.choice(band.n_slots, size=12, replace=False).tolist())
    symbol = awgn(band.compose_symbol(active, rng=rng), 0.0, rng)
    decoded = sorted(band.decode_slots(symbol, threshold_ratio=0.3))
    print(f"\nactive slots : {active}")
    print(f"decoded slots: {decoded}")
    print("single aggregate FFT decoded "
          f"{'ALL' if set(active) <= set(decoded) else 'SOME'} devices")

    by_subband = band.slots_by_subband()
    in_low = sum(1 for s in active if s in by_subband[0])
    print(f"({in_low} devices in the lower sub-band, "
          f"{len(active) - in_low} in the upper)\n")

    costs = compare_receiver_costs(band)
    print("receiver cost model (n log n FFT work):")
    print(f"  one aggregate FFT      : {costs['aggregate_fft_cost']:.0f}")
    print(f"  two filtered-band FFTs : {costs['filtered_fft_cost']:.0f}")
    print(f"  ratio                  : "
          f"{costs['aggregate_over_filtered']:.2f} "
          "(and the aggregate path needs no band-split filters)")


if __name__ == "__main__":
    main()
