#!/usr/bin/env python3
"""A NetScatter network living through channel dynamics — at any scale.

Default mode runs the full protocol closed loop over 100 rounds of a
fading office channel: tags measure each query's strength, step their
3-level power gains, sit out rounds they cannot compensate, re-associate
when the channel has moved for good, and the AP re-ranks and broadcasts
the reassignment — all while the network keeps collecting data.

Population-scale mode (``--devices`` of about 1000 or more) switches to
the flat-array population layer: the whole deployment lives in NumPy
columns (no per-device Python objects), devices are clustered into
concurrent rounds with the vectorised span grouping, and each schedule
cycle is scored through the hybrid fidelity split — closed-form OOK
aggregation for the uncontended bulk, seeded Monte-Carlo engine legs for
the contended/low-SNR tail (see ``docs/SCALING.md``).

Run:  python examples/living_network.py
      python examples/living_network.py --devices 100000 --rounds 3
"""

import argparse
import time

import numpy as np


def run_session_mode(n_devices: int, n_rounds: int) -> None:
    """The original 64-tag closed-loop session (per-round dynamics)."""
    from repro.channel.deployment import paper_deployment
    from repro.protocol.session import NetworkSession

    print(f"starting a {n_devices}-tag network for {n_rounds} rounds "
          "(~6 seconds of air time) under office fading...\n")

    deployment = paper_deployment(n_devices=n_devices, rng=101)
    session = NetworkSession(
        deployment=deployment, fading_std_db=3.0, rng=102
    )
    print(f"associated {session.ap.n_members} tags; "
          "running concurrent rounds:\n")

    checkpoints = {
        max(1, n_rounds * k // 5) for k in range(1, 6)
    }
    for round_index in range(1, n_rounds + 1):
        session.run_round()
        if round_index in checkpoints:
            stats = session.stats
            window = stats.delivery_by_round[-20:]
            print(f"  round {round_index:3d}: "
                  f"delivery (last 20) {np.mean(window) * 100:5.1f}%  "
                  f"participation {stats.mean_participation * 100:5.1f}%  "
                  f"power steps {stats.power_steps:3d}  "
                  f"re-associations {stats.reassociations:2d}")

    stats = session.stats
    print(f"\nsession summary:")
    print(f"  mean delivery        : {stats.mean_delivery * 100:.1f} %")
    print(f"  mean participation   : {stats.mean_participation * 100:.1f} %")
    print(f"  power-control steps  : {stats.power_steps}")
    print(f"  re-associations      : {stats.reassociations}")
    print(f"  reassignment queries : {stats.reassignment_queries} "
          "(each ~1700 bits, ~11 ms of downlink)")
    print("\nthe network absorbed every channel event without an outage —")
    print("the Section 3.2.3 power control plus Section 3.3.2 "
          "re-association loop working together")


def run_population_mode(
    n_devices: int, n_rounds: int, seed: int = 11
) -> None:
    """Population-scale rounds over the flat-array + hybrid path."""
    from repro.core.aggregation import required_aggregation_factor
    from repro.protocol.population import (
        hybrid_population_round,
        office_population,
    )

    print(f"population-scale mode: {n_devices} tags, "
          f"{n_rounds} full schedule cycle(s)\n")

    t0 = time.perf_counter()
    # Scale the office SNR distribution into the protocol's operating
    # window (strongest tags near +26 dB, weakest well below the -10 dB
    # closed-form validity floor — see docs/SCALING.md).
    population = office_population(
        n_devices, rng=101, snr_scale_db=-26.0
    )
    gen_s = time.perf_counter() - t0
    print(f"  deployment generated in {gen_s:.2f} s "
          f"(SNR {population.snr_db.min():.1f} .. "
          f"{population.snr_db.max():.1f} dB)")
    bands = required_aggregation_factor(n_devices, 256)
    print(f"  equivalent aggregate band: {bands} x BW "
          "(Section 3.1 scaling)\n")

    for cycle in range(1, n_rounds + 1):
        t0 = time.perf_counter()
        result = hybrid_population_round(population, seed=seed + cycle)
        dt = time.perf_counter() - t0
        print(f"  cycle {cycle}: {result.n_groups} concurrent rounds "
              f"({result.n_closed_form_groups} closed-form / "
              f"{result.n_monte_carlo_groups} Monte-Carlo) in {dt:.2f} s")
        print(f"           delivery {result.delivery_ratio * 100:5.1f}%  "
              f"BER {result.bit_error_rate:.4f}  "
              f"MC tail {result.n_monte_carlo_devices} devices")

    print("\nthe flat population + hybrid fidelity split is what makes "
          "this size tractable:")
    print("closed-form aggregation covers the uncontended bulk; the "
          "seeded Monte-Carlo tail")
    print("keeps engine-grade fidelity where the link law is not valid "
          "(docs/SCALING.md)")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="NetScatter closed-loop network demo"
    )
    parser.add_argument(
        "--devices", type=int, default=64,
        help="population size (>= 1000 switches to flat-array mode)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="rounds (session mode) or schedule cycles (population mode)",
    )
    args = parser.parse_args()

    if args.devices >= 1000:
        run_population_mode(args.devices, args.rounds or 3)
    else:
        run_session_mode(args.devices, args.rounds or 100)


if __name__ == "__main__":
    main()
