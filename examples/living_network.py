#!/usr/bin/env python3
"""A NetScatter network living through channel dynamics.

Runs the full protocol closed loop over 100 rounds of a fading office
channel: tags measure each query's strength, step their 3-level power
gains, sit out rounds they cannot compensate, re-associate when the
channel has moved for good, and the AP re-ranks and broadcasts the
reassignment — all while the network keeps collecting data.

Run:  python examples/living_network.py
"""

import numpy as np

from repro.channel.deployment import paper_deployment
from repro.protocol.session import NetworkSession


def main() -> None:
    n_devices = 64
    n_rounds = 100
    print(f"starting a {n_devices}-tag network for {n_rounds} rounds "
          "(~6 seconds of air time) under office fading...\n")

    deployment = paper_deployment(n_devices=n_devices, rng=101)
    session = NetworkSession(
        deployment=deployment, fading_std_db=3.0, rng=102
    )
    print(f"associated {session.ap.n_members} tags; "
          "running concurrent rounds:\n")

    checkpoints = {20, 40, 60, 80, 100}
    for round_index in range(1, n_rounds + 1):
        session.run_round()
        if round_index in checkpoints:
            stats = session.stats
            window = stats.delivery_by_round[-20:]
            print(f"  round {round_index:3d}: "
                  f"delivery (last 20) {np.mean(window) * 100:5.1f}%  "
                  f"participation {stats.mean_participation * 100:5.1f}%  "
                  f"power steps {stats.power_steps:3d}  "
                  f"re-associations {stats.reassociations:2d}")

    stats = session.stats
    print(f"\nsession summary:")
    print(f"  mean delivery        : {stats.mean_delivery * 100:.1f} %")
    print(f"  mean participation   : {stats.mean_participation * 100:.1f} %")
    print(f"  power-control steps  : {stats.power_steps}")
    print(f"  re-associations      : {stats.reassociations}")
    print(f"  reassignment queries : {stats.reassignment_queries} "
          "(each ~1700 bits, ~11 ms of downlink)")
    print("\nthe network absorbed every channel event without an outage —")
    print("the Section 3.2.3 power control plus Section 3.3.2 "
          "re-association loop working together")


if __name__ == "__main__":
    main()
