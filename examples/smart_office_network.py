#!/usr/bin/env python3
"""Whole-office sensing: 256 battery-free sensors report through one AP.

The paper's motivating scenario: sensors scattered across an office floor
(temperature, occupancy, ...) associate with the AP, get power-aware
cyclic shifts, and then report *concurrently* every round. This example
runs the full pipeline — deployment generation, association, concurrent
rounds over the simulated channel — and compares data-collection latency
against the sequential LoRa-backscatter baseline.

Run:  python examples/smart_office_network.py
"""

import numpy as np

from repro.baselines.lora_backscatter import LoRaBackscatterNetwork
from repro.channel.deployment import paper_deployment
from repro.core.config import NetScatterConfig
from repro.hardware.power_model import IcPowerBudget
from repro.phy.packet import PacketStructure
from repro.protocol.ap import AccessPoint
from repro.protocol.network import NetworkSimulator


def main() -> None:
    rng = np.random.default_rng(42)
    n_sensors = 256

    print(f"generating a 40 x 20 m office floor with {n_sensors} sensors...")
    deployment = paper_deployment(n_devices=n_sensors, rng=rng)
    snrs = deployment.snrs_db()
    print(f"uplink SNR: {snrs.min():.1f} .. {snrs.max():.1f} dB "
          f"(spread {deployment.snr_spread_db():.1f} dB)\n")

    # --- association phase (devices join one at a time, as deployed) ----
    config = NetScatterConfig(n_association_shifts=0)
    ap = AccessPoint(config)
    for device in deployment.devices:
        ap.run_association(device.device_id, device.uplink_snr_db)
    print(f"associated {ap.n_members} sensors; "
          f"{ap.stats.reassignment_queries} full reassignment queries, "
          f"{ap.stats.downlink_bits_sent} downlink bits spent\n")

    # --- concurrent data collection ------------------------------------
    sim = NetworkSimulator(deployment, config=config, rng=rng)
    effective = sim.effective_snrs_db()
    print("after 3-level power control the effective spread is "
          f"{max(effective) - min(effective):.1f} dB "
          "(the receiver tolerates ~35 dB)")

    metrics = sim.run_rounds(5)
    print(f"\nNetScatter, {n_sensors} concurrent sensors:")
    print(f"  round latency        : {metrics.latency_s * 1e3:.1f} ms")
    print(f"  packet delivery      : {metrics.delivery_ratio * 100:.1f} %")
    print(f"  network PHY rate     : {metrics.phy_rate_bps / 1e3:.1f} kbps")
    print(f"  link-layer data rate : "
          f"{metrics.link_layer_rate_bps / 1e3:.1f} kbps")

    # --- the TDMA baseline ----------------------------------------------
    baseline = LoRaBackscatterNetwork(snrs.tolist(), rate_adaptation=False)
    adaptive = LoRaBackscatterNetwork(snrs.tolist(), rate_adaptation=True)
    print(f"\nLoRa backscatter (sequential polling):")
    print(f"  fixed 8.7 kbps : {baseline.network_latency_s() * 1e3:.0f} ms "
          f"per sweep "
          f"({baseline.network_latency_s() / metrics.latency_s:.0f}x slower)")
    print(f"  ideal RA       : {adaptive.network_latency_s() * 1e3:.0f} ms "
          f"per sweep "
          f"({adaptive.network_latency_s() / metrics.latency_s:.0f}x slower)")

    # --- tag energy budget ----------------------------------------------
    budget = IcPowerBudget()
    packets_per_day = budget.packets_per_day_on_battery(
        config.chirp_params, PacketStructure()
    )
    per_packet_uj = budget.energy_per_packet_uj(
        config.chirp_params, PacketStructure()
    )
    print(f"\ntag power: {budget.total_uw:.1f} uW active "
          f"(paper's 65 nm IC simulation), {per_packet_uj:.1f} uJ/packet; "
          f"a CR2032-class cell sustains ~{packets_per_day:,.0f} "
          "reports/day for a year — transmit energy is never the "
          "binding constraint at these power levels")


if __name__ == "__main__":
    main()
