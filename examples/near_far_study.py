#!/usr/bin/env python3
"""Near-far study: why allocation and power control make 256 work.

Walks through the paper's Section 3.2.3 machinery interactively:

1. the side-lobe profile that creates the near-far problem,
2. BER of a weak device vs a strong interferer's distance and power,
3. what power-aware allocation buys over a random assignment,
4. the tag-side reciprocity power-control loop under fading.

Run:  python examples/near_far_study.py
"""

import numpy as np

from repro.channel.awgn import awgn
from repro.core.allocation import power_aware_allocation, random_allocation
from repro.core.config import NetScatterConfig
from repro.core.dcss import DeviceTransmission, compose_preamble_and_payload_symbols
from repro.core.power_control import simulate_power_control
from repro.core.receiver import NetScatterReceiver
from repro.phy.spectrum import side_lobe_profile


def weak_device_ber(config, strong_shift, delta_db, rng, n_bits=200):
    payload = rng.integers(0, 2, n_bits).tolist()
    interferer = rng.integers(0, 2, n_bits).tolist()
    txs = [
        DeviceTransmission(shift=0, bits=payload),
        DeviceTransmission(
            shift=strong_shift, bits=interferer, power_gain_db=delta_db
        ),
    ]
    symbols = compose_preamble_and_payload_symbols(
        config.chirp_params, txs, rng=rng
    )
    symbols = [awgn(s, -5.0, rng) for s in symbols]
    receiver = NetScatterReceiver(
        config, {0: 0, 1: strong_shift}, detection_snr_db=-100.0
    )
    got = receiver.decode_fast_symbols(symbols).bits_of(0)
    return sum(1 for a, b in zip(payload, got) if a != b) / n_bits


def main() -> None:
    rng = np.random.default_rng(11)
    config = NetScatterConfig()

    # 1. the side-lobe profile (Fig. 8).
    profile = side_lobe_profile(config.chirp_params, config.zero_pad_factor)
    print("side-lobe exposure of a unit-power device (Fig. 8):")
    for offset in (1.5, 2.5, 3.5, 8.0, 64.0, 256.0):
        print(f"  at {offset:6.1f} bins: {profile.at_natural_bin(offset):7.1f} dB")

    # 2. weak-device BER vs interferer distance and power (Fig. 15b).
    print("\nweak device BER vs a strong interferer (SNR -5 dB):")
    print("  distance   +10 dB   +25 dB   +35 dB")
    for distance in (2, 16, 256):
        row = [
            weak_device_ber(config, distance, delta, rng)
            for delta in (10.0, 25.0, 35.0)
        ]
        print(f"  {distance:5d}     " + "   ".join(f"{b:6.3f}" for b in row))
    print("  -> power-aware allocation puts big deltas at big distances")

    # 3. allocation ablation: sorted vs random at a 35 dB spread.
    snrs = np.linspace(0.0, 35.0, 64).tolist()
    aware = power_aware_allocation(snrs, config)
    blind = random_allocation(len(snrs), config, rng)

    def worst_pair_margin(allocation):
        # Exposure over the neighbour's residual-offset window: exactly
        # at integer distances the sinc nulls out, but jitter moves
        # devices by fractions of a bin, so the worst level within
        # +/- half a bin is what matters.
        worst = -np.inf
        for i, si in enumerate(snrs):
            for j, sj in enumerate(snrs):
                if si <= sj:
                    continue
                distance = abs(allocation[i] - allocation[j])
                distance = min(distance, config.n_bins - distance)
                hi = min(config.n_bins / 2.0 - 0.5, distance + 0.5)
                lo = max(0.5, min(distance - 0.5, hi - 0.5))
                lobe = profile.worst_in_range(lo, hi)
                worst = max(worst, (si - sj) + lobe)
        return worst

    print("\nworst (power delta + side lobe) margin over all pairs, dB "
          "(negative = every weak device clears every strong one):")
    print(f"  power-aware allocation: {worst_pair_margin(aware):+6.1f}")
    print(f"  random allocation     : {worst_pair_margin(blind):+6.1f}")

    # 4. the reciprocity power-control loop under strong fading.
    population = np.linspace(0.0, 25.0, 32).tolist()
    on = simulate_power_control(
        population, n_rounds=300, enabled=True, fading_std_db=6.0, rng=3
    )
    off = simulate_power_control(
        population, n_rounds=300, enabled=False, fading_std_db=6.0, rng=3
    )

    def wander(result):
        return float(np.mean(np.std(result["effective_snr_db"], axis=0)))

    print("\neffective-SNR wander under strong fading (std 6 dB):")
    print(f"  power control ON : {wander(on):.2f} dB")
    print(f"  power control OFF: {wander(off):.2f} dB")
    participation = float(np.mean(on["participating"]))
    print(f"  participation with control: {participation * 100:.1f}% "
          "(devices sit out rounds they cannot compensate)")


if __name__ == "__main__":
    main()
