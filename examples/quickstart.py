#!/usr/bin/env python3
"""Quickstart: decode concurrent backscatter devices with one FFT.

Builds the paper's core scenario from scratch: several devices each
ON-OFF-key their assigned cyclic shift below the noise floor, the air
sums everything, and the NetScatter receiver decodes every device from a
single dechirp + FFT per symbol.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NetScatterConfig, NetScatterReceiver
from repro.channel.awgn import awgn
from repro.core.dcss import (
    DeviceTransmission,
    compose_preamble_and_payload_symbols,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # The deployed configuration: 500 kHz, SF 9, SKIP 2 -> 512 cyclic
    # shifts, one OOK bit per ~1 ms symbol per device.
    config = NetScatterConfig()
    print(f"configuration : {config.describe()}")
    print(f"LoRa bitrate at the same (BW, SF): "
          f"{config.lora_bitrate_bps:.0f} bps for ONE device")
    print(f"distributed-CSS gain: {config.throughput_gain_over_lora:.1f}x\n")

    # Eight devices, SKIP-spaced shifts, each with its own payload.
    shifts = [0, 64, 128, 192, 256, 320, 384, 448]
    payloads = {i: rng.integers(0, 2, 16).tolist() for i in range(8)}
    transmissions = [
        DeviceTransmission(shift=shifts[i], bits=payloads[i])
        for i in range(8)
    ]

    # Compose the concurrent frame (preamble + OOK payload) and push it
    # 10 dB below the noise floor.
    snr_db = -10.0
    symbols = compose_preamble_and_payload_symbols(
        config.chirp_params, transmissions, rng=rng
    )
    noisy = [awgn(s, snr_db, rng) for s in symbols]
    print(f"8 devices transmitting concurrently at {snr_db:.0f} dB SNR "
          f"(below the noise floor)\n")

    # One receiver decodes everyone: single FFT per symbol.
    receiver = NetScatterReceiver(config, {i: shifts[i] for i in range(8)})
    decode = receiver.decode_fast_symbols(noisy)

    all_correct = True
    for device_id in range(8):
        got = decode.bits_of(device_id)
        ok = got == payloads[device_id]
        all_correct &= ok
        print(f"device {device_id} (shift {shifts[device_id]:3d}): "
              f"{''.join(map(str, got))} {'OK' if ok else 'BIT ERRORS'}")

    print(f"\n{'all 8 devices decoded correctly' if all_correct else 'errors occurred'} "
          f"from ONE FFT per symbol")


if __name__ == "__main__":
    main()
